//! The 256-bucket log-spaced histogram shared by serve latency stats,
//! netload reports and pool wait profiles.
//!
//! Promoted out of `dsx_serve::stats` (PR 3/PR 4) so every subsystem uses
//! one tested bucket mapping and one percentile estimator.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log-spaced histogram buckets (see [`bucket_index`]).
pub const HIST_BUCKETS: usize = 256;

/// Maps a value (canonically a latency in microseconds) to its histogram
/// bucket.
///
/// Values below 16 get one bucket each (exact); above that, each
/// power-of-two octave is split into 4 sub-buckets, so the relative
/// quantisation error of a percentile estimate is at most ~19%. The top
/// bucket index for any `u64` is 255, so the table never overflows.
pub fn bucket_index(us: u64) -> usize {
    if us < 16 {
        return us as usize;
    }
    let octave = us.ilog2() as usize; // >= 4
    let sub = ((us >> (octave - 2)) & 3) as usize;
    16 + (octave - 4) * 4 + sub
}

/// The smallest value that lands in bucket `idx` — the conservative value
/// percentile estimates report.
pub fn bucket_floor(idx: usize) -> u64 {
    if idx < 16 {
        return idx as u64;
    }
    let octave = 4 + (idx - 16) / 4;
    let sub = ((idx - 16) % 4) as u64;
    (1u64 << octave) | (sub << (octave - 2))
}

/// A thread-safe log-bucketed histogram with running count, sum and max.
///
/// **Memory ordering.** Every field is an independent counter: no thread
/// ever derives a decision that guards other memory from one, readers only
/// produce reports, and torn multi-field snapshots are acceptable by
/// design (a percentile racing a live `record` may see the count but not
/// the max yet). `Relaxed` is therefore sound on every access — each
/// per-site `// ORDER:` tag below points back to this argument.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// New, zeroed histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
        self.count.fetch_add(1, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
        self.sum.fetch_add(value, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
        self.max.fetch_max(value, Ordering::Relaxed); // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed) // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Largest recorded sample (0 before any record).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed) // ORDER: racy-tolerant counter (see struct doc)
    }

    /// Mean of the recorded samples (0.0 before any record).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) of the recorded samples
    /// from the log-spaced buckets. Returns 0 before any sample.
    ///
    /// Within the bucket holding the quantile rank the estimate is
    /// **linearly interpolated** by rank position across the bucket's
    /// width (assuming samples spread uniformly inside the bucket), so
    /// nearby percentiles stay distinct even when they share one wide
    /// bucket (serving latencies land in buckets ~19% wide, where a
    /// floor-only estimate collapsed p50/p95/p99 onto the same edge — see
    /// BENCH_PR3.json from PR 4). The estimate stays inside the bucket
    /// holding the rank and at or below the observed maximum; when samples
    /// cluster at a bucket's low edge the uniform assumption can place it
    /// above the exact sample percentile, but never by more than that
    /// bucket's width (~19% of the value, or ~25% right above 16).
    pub fn percentile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|c| c.load(Ordering::Relaxed)) // ORDER: racy-tolerant counter (see struct doc)
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let max = self.max();
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if seen + count >= rank {
                let floor = bucket_floor(idx);
                // The top bucket is unbounded; use the observed maximum as
                // its effective ceiling.
                let ceil = if idx + 1 < HIST_BUCKETS {
                    bucket_floor(idx + 1).min(max.max(floor))
                } else {
                    max.max(floor)
                };
                let width = ceil - floor;
                // Position of the rank inside this bucket, in [1, count]:
                // interpolate at (position - 1) / count so a width-1
                // (sub-16) bucket still reports its exact value.
                let position = rank - seen;
                let offset =
                    (u128::from(width) * u128::from(position - 1) / u128::from(count)) as u64;
                return (floor + offset).min(max.max(floor));
            }
            seen += count;
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let hist = Histogram::new();
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.sum(), 0);
        assert_eq!(hist.max(), 0);
        assert_eq!(hist.mean(), 0.0);
        assert_eq!(hist.percentile(0.5), 0);
        assert_eq!(hist.percentile(0.99), 0);
    }

    #[test]
    fn count_sum_max_mean_track_samples() {
        let hist = Histogram::new();
        for v in [10u64, 20, 30] {
            hist.record(v);
        }
        assert_eq!(hist.count(), 3);
        assert_eq!(hist.sum(), 60);
        assert_eq!(hist.max(), 30);
        assert_eq!(hist.mean(), 20.0);
    }

    #[test]
    fn sub_16_percentiles_are_exact() {
        // Values below 16 get one bucket each, so percentiles over them
        // are exact — 100 samples of 1..=10, 10 of each.
        let hist = Histogram::new();
        for v in 1..=10u64 {
            for _ in 0..10 {
                hist.record(v);
            }
        }
        assert_eq!(hist.percentile(0.50), 5);
        assert_eq!(hist.percentile(0.95), 10);
        assert_eq!(hist.percentile(0.99), 10);
        assert_eq!(hist.percentile(0.01), 1);
        assert_eq!(hist.percentile(1.0), 10);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded_by_max() {
        let hist = Histogram::new();
        for v in [3u64, 120, 950, 4_000, 60_000, 2_000_000] {
            hist.record(v);
        }
        let p50 = hist.percentile(0.50);
        let p95 = hist.percentile(0.95);
        let p99 = hist.percentile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= hist.max());
        // Log buckets never over-report: each estimate stays inside the
        // bucket holding its rank.
        assert!(p50 <= 950);
    }

    #[test]
    fn interpolation_keeps_percentiles_distinct_within_one_wide_bucket() {
        // 100 samples spread across [49200, 57200) — all inside ONE log
        // bucket ([49152, 57344)). A floor-only estimate collapses
        // p50 == p95 == p99 == 49152; sub-bucket linear interpolation must
        // keep them distinct, ordered and bounded.
        let hist = Histogram::new();
        for i in 0..100u64 {
            hist.record(49_200 + i * 80);
        }
        let p50 = hist.percentile(0.50);
        let p95 = hist.percentile(0.95);
        let p99 = hist.percentile(0.99);
        assert!(p50 < p95 && p95 < p99, "{p50} {p95} {p99} must be distinct");
        assert!(p50 >= 49_152 && p99 <= 57_120, "{p50} {p99}");
        // The median estimate lands near the middle of the bucket, not at
        // its floor.
        assert!(p50 > 51_000 && p50 < 55_000, "{p50}");
    }

    #[test]
    fn bucket_mapping_round_trips_as_a_floor() {
        for us in (0..16).chain([16, 17, 31, 32, 100, 1000, 123_456, u64::MAX / 2]) {
            let idx = bucket_index(us);
            let floor = bucket_floor(idx);
            assert!(floor <= us, "floor({idx}) = {floor} > {us}");
            // The next bucket starts above this value.
            if idx + 1 < HIST_BUCKETS {
                assert!(bucket_floor(idx + 1) > us, "value {us} fits bucket {idx}");
            }
        }
    }
}
