//! A deterministic fault-injection TCP proxy for the DSXN serving path.
//!
//! `dsx-chaos` sits between a client and a server, forwards length-prefixed
//! frames, and — per a seeded [`FaultPlan`] — delays, corrupts, truncates,
//! duplicates, black-holes or severs them. The point is to *prove* the
//! fault-tolerance claims of the serving stack: every injected fault must
//! end, on the client side, in a typed error or a successful retry. Never a
//! hang, never a silently lost response.
//!
//! Two design rules keep the harness honest:
//!
//! * **Zero dependencies.** The proxy shares no code with the stack it
//!   tortures (not even the wire-protocol crate). It understands exactly one
//!   thing about DSXN: frames start with a `u32` little-endian length
//!   prefix. A shared parsing bug would hide from both sides at once.
//! * **Determinism.** Every fault decision is a pure function of
//!   `(seed, connection, direction, frame index)` via SplitMix64 — no
//!   shared RNG state, no lock ordering between connections, and a failing
//!   CI seed replays exactly on a laptop.
//!
//! ```no_run
//! use dsx_chaos::{ChaosProxy, FaultPlan};
//!
//! let plan = FaultPlan::new(42); // default mix: ~70% clean passes
//! let proxy = ChaosProxy::start("127.0.0.1:7878".parse().unwrap(), plan).unwrap();
//! println!("point your client at {}", proxy.local_addr());
//! # proxy.shutdown();
//! ```
#![forbid(unsafe_code)]

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a pump blocks in one `read` before re-checking the stop flag —
/// the knob that guarantees `shutdown` never hangs on an idle connection.
const POLL: Duration = Duration::from_millis(50);

/// Largest frame the proxy will buffer; mirrors (and slightly exceeds) the
/// DSXN wire cap so the proxy is never the limiting party. A prefix above
/// it means the stream is not speaking length-prefixed frames at all, and
/// the connection is severed.
const MAX_FRAME: usize = 80 * 1024 * 1024;

/// SplitMix64 finalizer: the deterministic heart of every fault decision.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which way a frame was travelling when the proxy touched it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client → server (requests).
    Upstream,
    /// Server → client (responses).
    Downstream,
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Direction::Upstream => write!(f, "up"),
            Direction::Downstream => write!(f, "down"),
        }
    }
}

/// One injectable fault. `Pass` is the no-fault decision and is never
/// recorded in the event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Forward the frame untouched.
    Pass,
    /// Hold the frame for the plan's `delay_for`, then forward it.
    Delay,
    /// Forward the length prefix and half the body, then sever the
    /// connection (a partial frame desyncs framing, so the stream cannot
    /// honestly continue).
    Truncate,
    /// Flip a byte inside the first 8 body bytes — DSXN's magic/version
    /// region — so the receiver sees a *detectable*, typed malformation
    /// under an honest length prefix.
    Corrupt,
    /// Forward the frame twice.
    Duplicate,
    /// Swallow the frame and keep the connection open (the receiver waits
    /// on silence until its own timeout fires).
    BlackHole,
    /// Close both sides of the connection without forwarding.
    Sever,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FaultKind::Pass => "pass",
            FaultKind::Delay => "delay",
            FaultKind::Truncate => "truncate",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Duplicate => "duplicate",
            FaultKind::BlackHole => "black-hole",
            FaultKind::Sever => "sever",
        };
        write!(f, "{name}")
    }
}

/// Relative weights for each fault kind — the dial between a gentle soak
/// and a hurricane.
#[derive(Debug, Clone, Copy)]
pub struct FaultMix {
    pub pass: u32,
    pub delay: u32,
    pub truncate: u32,
    pub corrupt: u32,
    pub duplicate: u32,
    pub black_hole: u32,
    pub sever: u32,
    /// How long a [`FaultKind::Delay`] holds its frame.
    pub delay_for: Duration,
}

impl Default for FaultMix {
    /// The soak mix: roughly 70% clean passes, every fault kind present.
    fn default() -> Self {
        FaultMix {
            pass: 70,
            delay: 8,
            truncate: 4,
            corrupt: 6,
            duplicate: 4,
            black_hole: 4,
            sever: 4,
            delay_for: Duration::from_millis(20),
        }
    }
}

impl FaultMix {
    /// A mix that injects exactly `kind` on every frame — for tests that
    /// pin one failure mode.
    pub fn only(kind: FaultKind) -> FaultMix {
        let mut mix = FaultMix {
            pass: 0,
            delay: 0,
            truncate: 0,
            corrupt: 0,
            duplicate: 0,
            black_hole: 0,
            sever: 0,
            delay_for: Duration::from_millis(20),
        };
        *mix.weight_mut(kind) = 1;
        mix
    }

    /// A mix that never injects anything — the control group.
    pub fn pass_through() -> FaultMix {
        FaultMix::only(FaultKind::Pass)
    }

    fn weight_mut(&mut self, kind: FaultKind) -> &mut u32 {
        match kind {
            FaultKind::Pass => &mut self.pass,
            FaultKind::Delay => &mut self.delay,
            FaultKind::Truncate => &mut self.truncate,
            FaultKind::Corrupt => &mut self.corrupt,
            FaultKind::Duplicate => &mut self.duplicate,
            FaultKind::BlackHole => &mut self.black_hole,
            FaultKind::Sever => &mut self.sever,
        }
    }

    fn total(&self) -> u64 {
        u64::from(self.pass)
            + u64::from(self.delay)
            + u64::from(self.truncate)
            + u64::from(self.corrupt)
            + u64::from(self.duplicate)
            + u64::from(self.black_hole)
            + u64::from(self.sever)
    }
}

/// The seeded, deterministic fault schedule the proxy executes.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    pub seed: u64,
    pub mix: FaultMix,
}

impl FaultPlan {
    /// The default soak plan under `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            mix: FaultMix::default(),
        }
    }

    /// A plan with a custom mix under `seed`.
    pub fn with_mix(seed: u64, mix: FaultMix) -> FaultPlan {
        FaultPlan { seed, mix }
    }

    /// The fault for frame `frame` of connection `conn` in `direction` — a
    /// pure function, so replays and parallel connections agree without
    /// sharing state.
    pub fn decide(&self, conn: usize, direction: Direction, frame: u64) -> FaultKind {
        let total = self.mix.total();
        if total == 0 {
            return FaultKind::Pass;
        }
        let dir_bit = match direction {
            Direction::Upstream => 0u64,
            Direction::Downstream => 1u64,
        };
        let key = self
            .seed
            .wrapping_mul(0x0100_0000_01B3) // FNV prime keeps seed bits live
            .wrapping_add((conn as u64) << 17)
            .wrapping_add(dir_bit << 16)
            .wrapping_add(frame);
        let mut draw = splitmix64(key) % total;
        for (kind, weight) in [
            (FaultKind::Pass, self.mix.pass),
            (FaultKind::Delay, self.mix.delay),
            (FaultKind::Truncate, self.mix.truncate),
            (FaultKind::Corrupt, self.mix.corrupt),
            (FaultKind::Duplicate, self.mix.duplicate),
            (FaultKind::BlackHole, self.mix.black_hole),
            (FaultKind::Sever, self.mix.sever),
        ] {
            let weight = u64::from(weight);
            if draw < weight {
                return kind;
            }
            draw -= weight;
        }
        FaultKind::Pass // unreachable: draw < total = sum of weights
    }
}

/// One injected fault, as recorded in the proxy's event log (clean passes
/// are not recorded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Connection index, in accept order.
    pub conn: usize,
    pub direction: Direction,
    /// Frame index within that connection and direction.
    pub frame: u64,
    pub kind: FaultKind,
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conn {} {} frame {}: {}",
            self.conn, self.direction, self.frame, self.kind
        )
    }
}

/// Shared state between the proxy handle and its threads.
struct Shared {
    stop: AtomicBool,
    events: Mutex<Vec<FaultEvent>>,
}

impl Shared {
    fn record(&self, event: FaultEvent) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(event);
    }
}

/// The running proxy: accepts on an ephemeral local port and forwards every
/// connection to `upstream` through the fault plan.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    pumps: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ChaosProxy {
    /// Binds `127.0.0.1:0` and starts proxying to `upstream` under `plan`.
    pub fn start(upstream: SocketAddr, plan: FaultPlan) -> io::Result<ChaosProxy> {
        ChaosProxy::start_on("127.0.0.1:0", upstream, plan)
    }

    /// Like [`ChaosProxy::start`] with an explicit listen address.
    pub fn start_on(listen: &str, upstream: SocketAddr, plan: FaultPlan) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            events: Mutex::new(Vec::new()),
        });
        let pumps = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let pumps = Arc::clone(&pumps);
            std::thread::Builder::new()
                .name("dsx-chaos-acceptor".to_string())
                .spawn(move || accept_loop(&listener, upstream, plan, &shared, &pumps))?
        };
        Ok(ChaosProxy {
            local_addr,
            shared,
            acceptor,
            pumps,
        })
    }

    /// Where clients should connect.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of every fault injected so far (clean passes excluded).
    pub fn events(&self) -> Vec<FaultEvent> {
        self.shared
            .events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Stops accepting, tears down every pump, and returns the full event
    /// log. Bounded: pumps poll the stop flag every 50 ms (`POLL`), so
    /// this cannot hang on an idle connection.
    pub fn shutdown(self) -> Vec<FaultEvent> {
        let ChaosProxy {
            shared,
            acceptor,
            pumps,
            ..
        } = self;
        // ORDER: plain stop flag; pumps poll it between reads.
        shared.stop.store(true, Ordering::Relaxed);
        if acceptor.join().is_err() {
            eprintln!("dsx-chaos: the acceptor panicked; continuing shutdown");
        }
        let pumps = std::mem::take(
            &mut *pumps
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for pump in pumps {
            let _ = pump.join();
        }
        let events = shared
            .events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        events
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: FaultPlan,
    shared: &Arc<Shared>,
    pumps: &Mutex<Vec<JoinHandle<()>>>,
) {
    let mut conn = 0usize;
    // ORDER: stop flag — a stale read costs one extra poll interval.
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((client, _peer)) => {
                match proxy_connection(client, upstream, plan, conn, shared) {
                    Ok(pair) => pumps
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .extend(pair),
                    Err(e) => eprintln!("dsx-chaos: failed to proxy connection {conn}: {e}"),
                }
                conn += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) => {
                eprintln!("dsx-chaos: accept failed: {e}");
                std::thread::sleep(POLL);
            }
        }
    }
}

/// Wires one client connection to a fresh upstream connection through two
/// pump threads (one per direction).
fn proxy_connection(
    client: TcpStream,
    upstream: SocketAddr,
    plan: FaultPlan,
    conn: usize,
    shared: &Arc<Shared>,
) -> io::Result<[JoinHandle<()>; 2]> {
    let server = TcpStream::connect_timeout(&upstream, Duration::from_secs(5))?;
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    // The poll cadence that keeps shutdown bounded.
    client.set_read_timeout(Some(POLL))?;
    server.set_read_timeout(Some(POLL))?;
    // A stuck receiver must not wedge a pump forever either.
    client.set_write_timeout(Some(Duration::from_secs(5)))?;
    server.set_write_timeout(Some(Duration::from_secs(5)))?;
    let up = Pump {
        src: client.try_clone()?,
        dst: server.try_clone()?,
        direction: Direction::Upstream,
        conn,
        plan,
        shared: Arc::clone(shared),
    };
    let down = Pump {
        src: server,
        dst: client,
        direction: Direction::Downstream,
        conn,
        plan,
        shared: Arc::clone(shared),
    };
    let up = std::thread::Builder::new()
        .name(format!("dsx-chaos-up-{conn}"))
        .spawn(move || up.run())?;
    let down = std::thread::Builder::new()
        .name(format!("dsx-chaos-down-{conn}"))
        .spawn(move || down.run())?;
    Ok([up, down])
}

/// One direction of one proxied connection.
struct Pump {
    src: TcpStream,
    dst: TcpStream,
    direction: Direction,
    conn: usize,
    plan: FaultPlan,
    shared: Arc<Shared>,
}

enum ReadOutcome {
    Frame(Vec<u8>),
    /// Clean EOF, stop requested, or unframeable stream.
    Done,
}

impl Pump {
    fn run(mut self) {
        let mut frame_index = 0u64;
        loop {
            let frame = match self.read_frame() {
                Ok(ReadOutcome::Frame(frame)) => frame,
                Ok(ReadOutcome::Done) | Err(_) => return self.sever_quietly(),
            };
            let kind = self.plan.decide(self.conn, self.direction, frame_index);
            if kind != FaultKind::Pass {
                self.shared.record(FaultEvent {
                    conn: self.conn,
                    direction: self.direction,
                    frame: frame_index,
                    kind,
                });
            }
            frame_index += 1;
            let forwarded = match kind {
                FaultKind::Pass => self.dst.write_all(&frame),
                FaultKind::Delay => {
                    self.interruptible_sleep(self.plan.mix.delay_for);
                    self.dst.write_all(&frame)
                }
                FaultKind::Truncate => {
                    // Half the frame, then a hard cut: framing is gone, so
                    // the stream must die with it.
                    let cut = 4 + (frame.len() - 4) / 2;
                    let _ = self.dst.write_all(&frame[..cut]);
                    return self.sever_quietly();
                }
                FaultKind::Corrupt => {
                    let mut evil = frame;
                    // Flip inside the magic/version region (first 8 body
                    // bytes) so the receiver detects the damage instead of
                    // mis-parsing it.
                    let at = 4 + (splitmix64(self.plan.seed ^ frame_index) % 8) as usize;
                    if at < evil.len() {
                        evil[at] ^= 0x5A;
                    }
                    self.dst.write_all(&evil)
                }
                FaultKind::Duplicate => self
                    .dst
                    .write_all(&frame)
                    .and_then(|()| self.dst.write_all(&frame)),
                FaultKind::BlackHole => Ok(()),
                FaultKind::Sever => return self.sever_quietly(),
            };
            if forwarded.is_err() {
                return self.sever_quietly();
            }
        }
    }

    /// Reads one `u32-LE length prefix + body` frame, polling the stop flag
    /// between short read timeouts so shutdown stays bounded.
    fn read_frame(&mut self) -> io::Result<ReadOutcome> {
        let mut prefix = [0u8; 4];
        if !self.read_full(&mut prefix)? {
            return Ok(ReadOutcome::Done);
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME {
            // Not a framed stream (or a hostile prefix): refuse to buffer.
            return Ok(ReadOutcome::Done);
        }
        let mut frame = vec![0u8; 4 + len];
        frame[..4].copy_from_slice(&prefix);
        if !self.read_full(&mut frame[4..])? {
            return Ok(ReadOutcome::Done); // EOF mid-frame
        }
        Ok(ReadOutcome::Frame(frame))
    }

    /// Fills `buf` from `src`, tolerating read-timeout polls. Returns
    /// `Ok(false)` on EOF or a stop request.
    fn read_full(&mut self, buf: &mut [u8]) -> io::Result<bool> {
        let mut filled = 0usize;
        while filled < buf.len() {
            match self.src.read(&mut buf[filled..]) {
                Ok(0) => return Ok(false),
                Ok(n) => filled += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // ORDER: stop flag poll — staleness costs one POLL.
                    if self.shared.stop.load(Ordering::Relaxed) {
                        return Ok(false);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Sleeps `total` in [`POLL`] slices, returning early on stop.
    fn interruptible_sleep(&self, total: Duration) {
        let mut left = total;
        while !left.is_zero() {
            // ORDER: stop flag poll — staleness costs one POLL.
            if self.shared.stop.load(Ordering::Relaxed) {
                return;
            }
            let step = left.min(POLL);
            std::thread::sleep(step);
            left -= step;
        }
    }

    /// Closes both sides; errors are expected (the peer may already be
    /// gone) and irrelevant.
    fn sever_quietly(&self) {
        let _ = self.src.shutdown(Shutdown::Both);
        let _ = self.dst.shutdown(Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// A minimal upstream: echoes every length-prefixed frame back.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            // Serve a handful of connections, then retire (tests are short).
            for _ in 0..8 {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                std::thread::spawn(move || {
                    let mut prefix = [0u8; 4];
                    loop {
                        if stream.read_exact(&mut prefix).is_err() {
                            return;
                        }
                        let len = u32::from_le_bytes(prefix) as usize;
                        let mut body = vec![0u8; len];
                        if stream.read_exact(&mut body).is_err() {
                            return;
                        }
                        if stream.write_all(&prefix).is_err() || stream.write_all(&body).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut bytes = (payload.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(payload);
        bytes
    }

    #[test]
    fn decisions_are_deterministic_and_cover_every_kind() {
        let plan = FaultPlan::new(42);
        let replay = FaultPlan::new(42);
        let mut seen = std::collections::HashSet::new();
        for conn in 0..4 {
            for frame in 0..256 {
                let kind = plan.decide(conn, Direction::Upstream, frame);
                assert_eq!(kind, replay.decide(conn, Direction::Upstream, frame));
                seen.insert(kind);
                seen.insert(plan.decide(conn, Direction::Downstream, frame));
            }
        }
        assert_eq!(
            seen.len(),
            7,
            "default mix should produce all kinds: {seen:?}"
        );
        // Different directions and connections draw different streams.
        let up: Vec<_> = (0..64)
            .map(|i| plan.decide(0, Direction::Upstream, i))
            .collect();
        let down: Vec<_> = (0..64)
            .map(|i| plan.decide(0, Direction::Downstream, i))
            .collect();
        assert_ne!(up, down);
    }

    #[test]
    fn an_only_mix_pins_the_fault_kind() {
        let plan = FaultPlan::with_mix(7, FaultMix::only(FaultKind::BlackHole));
        for i in 0..100 {
            assert_eq!(plan.decide(0, Direction::Upstream, i), FaultKind::BlackHole);
        }
        let quiet = FaultPlan::with_mix(7, FaultMix::pass_through());
        for i in 0..100 {
            assert_eq!(quiet.decide(3, Direction::Downstream, i), FaultKind::Pass);
        }
    }

    #[test]
    fn pass_through_proxy_round_trips_frames() {
        let (upstream, _echo) = echo_server();
        let proxy =
            ChaosProxy::start(upstream, FaultPlan::with_mix(1, FaultMix::pass_through())).unwrap();
        let mut client = TcpStream::connect(proxy.local_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        for round in 0..5u8 {
            let payload = vec![round; 1 + round as usize * 7];
            client.write_all(&frame(&payload)).unwrap();
            let mut prefix = [0u8; 4];
            client.read_exact(&mut prefix).unwrap();
            let mut body = vec![0u8; u32::from_le_bytes(prefix) as usize];
            client.read_exact(&mut body).unwrap();
            assert_eq!(body, payload);
        }
        let events = proxy.shutdown();
        assert!(
            events.is_empty(),
            "pass-through injected faults: {events:?}"
        );
    }

    #[test]
    fn a_sever_plan_closes_the_connection_and_logs_the_event() {
        let (upstream, _echo) = echo_server();
        let proxy = ChaosProxy::start(
            upstream,
            FaultPlan::with_mix(2, FaultMix::only(FaultKind::Sever)),
        )
        .unwrap();
        let mut client = TcpStream::connect(proxy.local_addr()).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        client.write_all(&frame(b"doomed")).unwrap();
        let mut buf = [0u8; 4];
        // The proxy severs instead of forwarding: EOF, not data.
        match client.read(&mut buf) {
            Ok(0) => {}
            Ok(n) => panic!("expected EOF after sever, read {n} bytes"),
            Err(e) => panic!("expected clean EOF after sever, got {e}"),
        }
        let events = proxy.shutdown();
        assert!(
            events
                .iter()
                .any(|e| e.kind == FaultKind::Sever && e.direction == Direction::Upstream),
            "sever not logged: {events:?}"
        );
    }

    #[test]
    fn shutdown_is_bounded_with_an_idle_connection_open() {
        let (upstream, _echo) = echo_server();
        let proxy = ChaosProxy::start(upstream, FaultPlan::new(3)).unwrap();
        // A client that connects and never sends: pumps sit in poll reads.
        let _idle = TcpStream::connect(proxy.local_addr()).unwrap();
        let started = std::time::Instant::now();
        proxy.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "shutdown hung on an idle connection"
        );
    }
}
