//! `dsx-chaos` — a standalone fault-injecting TCP proxy.
//!
//! ```text
//! dsx-chaos --upstream 127.0.0.1:7878 [--listen 127.0.0.1:0] [--seed 42]
//! ```
//!
//! Forwards DSXN frames to `--upstream`, injecting the default fault mix
//! (~30% of frames delayed, corrupted, truncated, duplicated, black-holed
//! or severed) deterministically from `--seed`. Prints the listen address
//! on stdout and every injected fault on stderr; runs until killed.

use dsx_chaos::{ChaosProxy, FaultPlan};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: dsx-chaos --upstream HOST:PORT [--listen HOST:PORT] [--seed N]\n\
         \n\
         A deterministic fault-injection proxy for the DSXN serving path.\n\
         --upstream  the real server to forward to (required)\n\
         --listen    address to accept clients on (default 127.0.0.1:0)\n\
         --seed      fault-plan seed (default 42)"
    );
    std::process::exit(2);
}

fn main() {
    let mut upstream: Option<String> = None;
    let mut listen = "127.0.0.1:0".to_string();
    let mut seed = 42u64;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| match argv.next() {
            Some(v) => v,
            None => {
                eprintln!("dsx-chaos: {name} needs a value");
                usage();
            }
        };
        match flag.as_str() {
            "--upstream" => upstream = Some(value("--upstream")),
            "--listen" => listen = value("--listen"),
            "--seed" => match value("--seed").parse() {
                Ok(n) => seed = n,
                Err(_) => {
                    eprintln!("dsx-chaos: --seed must be an unsigned integer");
                    usage();
                }
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("dsx-chaos: unknown flag {other}");
                usage();
            }
        }
    }
    let Some(upstream) = upstream else {
        eprintln!("dsx-chaos: --upstream is required");
        usage();
    };
    let upstream = match upstream.parse() {
        Ok(addr) => addr,
        Err(_) => {
            eprintln!("dsx-chaos: --upstream must be a HOST:PORT socket address");
            usage();
        }
    };
    let proxy = match ChaosProxy::start_on(&listen, upstream, FaultPlan::new(seed)) {
        Ok(proxy) => proxy,
        Err(e) => {
            eprintln!("dsx-chaos: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", proxy.local_addr());
    eprintln!(
        "dsx-chaos: proxying {} -> {} (seed {seed}); ^C to stop",
        proxy.local_addr(),
        upstream
    );
    // Report injected faults as they happen until the process is killed.
    let mut reported = 0usize;
    loop {
        std::thread::sleep(Duration::from_millis(500));
        let events = proxy.events();
        for event in &events[reported..] {
            eprintln!("dsx-chaos: {event}");
        }
        reported = events.len();
    }
}
