//! Activation layers.

use crate::layer::Layer;
use dsx_tensor::Tensor;

/// Rectified linear unit.
pub struct ReLU {
    mask: Option<Tensor>,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        ReLU { mask: None }
    }
}

impl Default for ReLU {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for ReLU {
    fn name(&self) -> String {
        "ReLU".into()
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.mask = train.then(|| input.relu_mask());
        input.relu()
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.relu()
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        // lint: allow(panic) — documented Layer contract: backward
        // requires a prior training-mode forward.
        let mask = self.mask.as_ref().expect("ReLU::backward before forward");
        grad_output.mul(mask)
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::check_input_gradient;

    #[test]
    fn forward_clips_negatives() {
        let mut relu = ReLU::new();
        let out = relu.forward(&Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3]), true);
        assert_eq!(out.as_slice(), &[0.0, 0.5, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = ReLU::new();
        relu.forward(&Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3]), true);
        let grad = relu.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]));
        assert_eq!(grad.as_slice(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn gradient_check_away_from_kink() {
        let mut relu = ReLU::new();
        // rand_uniform in [-1,1] may land near zero; tolerance is loose
        // enough for the probe points used by the checker.
        check_input_gradient(&mut relu, &[4, 5], 5e-2);
    }

    #[test]
    fn has_no_parameters() {
        let mut relu = ReLU::new();
        assert_eq!(relu.num_params(), 0);
    }

    #[test]
    fn infer_matches_eval_forward_and_skips_the_mask() {
        let mut relu = ReLU::new();
        crate::layer::check_infer_parity(&mut relu, &[4, 5], 0.0);
        assert!(relu.mask.is_none(), "eval forward must not cache the mask");
    }
}
