//! Batch normalisation over NCHW activations.

use crate::layer::Layer;
use dsx_tensor::Tensor;

/// 2-D batch normalisation (per-channel statistics over batch and spatial
/// dimensions), with learnable scale (`gamma`) and shift (`beta`) and running
/// statistics for evaluation mode.
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    // Forward cache for the backward pass.
    cached_normalized: Option<Tensor>,
    cached_std_inv: Option<Tensor>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature channels.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            cached_normalized: None,
            cached_std_inv: None,
        }
    }

    /// Running mean (evaluation statistics).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Running variance (evaluation statistics).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    fn normalize(&self, input: &Tensor, mean: &Tensor, var: &Tensor) -> (Tensor, Tensor) {
        let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        assert_eq!(c, self.channels, "BatchNorm2d channel mismatch");
        let plane = h * w;
        let mut normalized = Tensor::zeros(input.shape());
        let mut std_inv = Tensor::zeros(&[c]);
        for ch in 0..c {
            std_inv.as_mut_slice()[ch] = 1.0 / (var.as_slice()[ch] + self.eps).sqrt();
        }
        let x = input.as_slice();
        let out = normalized.as_mut_slice();
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * plane;
                let mu = mean.as_slice()[ch];
                let si = std_inv.as_slice()[ch];
                for p in 0..plane {
                    out[base + p] = (x[base + p] - mu) * si;
                }
            }
        }
        (normalized, std_inv)
    }

    fn scale_shift(&self, normalized: &Tensor) -> Tensor {
        let (n, c, h, w) = (
            normalized.dim(0),
            normalized.dim(1),
            normalized.dim(2),
            normalized.dim(3),
        );
        let plane = h * w;
        let mut out = Tensor::zeros(normalized.shape());
        let o = out.as_mut_slice();
        let x = normalized.as_slice();
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * plane;
                let g = self.gamma.as_slice()[ch];
                let b = self.beta.as_slice()[ch];
                for p in 0..plane {
                    o[base + p] = g * x[base + p] + b;
                }
            }
        }
        out
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> String {
        format!("BatchNorm2d({})", self.channels)
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.rank(), 4, "BatchNorm2d expects NCHW input");
        if train {
            let mean = input.mean_per_channel();
            let var = input.var_per_channel(&mean);
            // Update running statistics.
            for ch in 0..self.channels {
                let rm = &mut self.running_mean.as_mut_slice()[ch];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mean.as_slice()[ch];
                let rv = &mut self.running_var.as_mut_slice()[ch];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * var.as_slice()[ch];
            }
            let (normalized, std_inv) = self.normalize(input, &mean, &var);
            let out = self.scale_shift(&normalized);
            self.cached_normalized = Some(normalized);
            self.cached_std_inv = Some(std_inv);
            out
        } else {
            // Clear rather than keep a stale training cache: a backward
            // after an eval forward must panic, not consume old activations.
            self.cached_normalized = None;
            self.cached_std_inv = None;
            self.infer(input)
        }
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.rank(), 4, "BatchNorm2d expects NCHW input");
        // Evaluation mode: running statistics, no cache, no stat updates.
        let (normalized, _) = self.normalize(input, &self.running_mean, &self.running_var);
        self.scale_shift(&normalized)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let normalized = self
            .cached_normalized
            .as_ref()
            // lint: allow(panic) — documented Layer contract: backward
            // requires a prior training-mode forward.
            .expect("BatchNorm2d::backward before forward(train=true)");
        // lint: allow(panic) — set in the same forward pass as
        // `cached_normalized`, checked just above.
        let std_inv = self.cached_std_inv.as_ref().unwrap();
        let (n, c, h, w) = (
            grad_output.dim(0),
            grad_output.dim(1),
            grad_output.dim(2),
            grad_output.dim(3),
        );
        let plane = h * w;
        let m = (n * plane) as f32;

        // Parameter gradients.
        let go = grad_output.as_slice();
        let xn = normalized.as_slice();
        let mut sum_go = vec![0.0f32; c];
        let mut sum_go_xn = vec![0.0f32; c];
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * plane;
                for p in 0..plane {
                    sum_go[ch] += go[base + p];
                    sum_go_xn[ch] += go[base + p] * xn[base + p];
                }
            }
        }
        for ch in 0..c {
            self.grad_beta.as_mut_slice()[ch] += sum_go[ch];
            self.grad_gamma.as_mut_slice()[ch] += sum_go_xn[ch];
        }

        // Input gradient (standard batch-norm backward formula):
        // dx = gamma * std_inv / m * (m * dy - sum(dy) - xn * sum(dy * xn))
        let mut grad_input = Tensor::zeros(grad_output.shape());
        let gi = grad_input.as_mut_slice();
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * plane;
                let g = self.gamma.as_slice()[ch];
                let si = std_inv.as_slice()[ch];
                let coeff = g * si / m;
                for p in 0..plane {
                    gi[base + p] =
                        coeff * (m * go[base + p] - sum_go[ch] - xn[base + p] * sum_go_xn[ch]);
                }
            }
        }
        grad_input
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.gamma, &mut self.grad_gamma);
        f(&mut self.beta, &mut self.grad_beta);
    }

    fn state(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        f("gamma", &self.gamma);
        f("beta", &self.beta);
        // The running statistics are not trainable parameters but are part
        // of the inference behaviour — a checkpoint without them would
        // serve with freshly-zeroed normalisation.
        f("running_mean", &self.running_mean);
        f("running_var", &self.running_var);
    }

    fn load_state(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        f("gamma", &mut self.gamma);
        f("beta", &mut self.beta);
        f("running_mean", &mut self.running_mean);
        f("running_var", &mut self.running_var);
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_forward_normalizes_per_channel() {
        let mut bn = BatchNorm2d::new(3);
        let input = Tensor::randn(&[4, 3, 5, 5], 1).scale(3.0).map(|v| v + 2.0);
        let out = bn.forward(&input, true);
        let mean = out.mean_per_channel();
        let var = out.var_per_channel(&mean);
        for ch in 0..3 {
            assert!(mean.as_slice()[ch].abs() < 1e-3, "channel {ch} mean not ~0");
            assert!(
                (var.as_slice()[ch] - 1.0).abs() < 1e-2,
                "channel {ch} var not ~1"
            );
        }
    }

    #[test]
    fn eval_mode_uses_running_statistics() {
        let mut bn = BatchNorm2d::new(2);
        let input = Tensor::randn(&[8, 2, 4, 4], 2).map(|v| v * 2.0 + 1.0);
        // Several training passes move the running stats towards the batch
        // statistics.
        for _ in 0..50 {
            bn.forward(&input, true);
        }
        let eval_out = bn.forward(&input, false);
        let mean = eval_out.mean_per_channel();
        for ch in 0..2 {
            assert!(mean.as_slice()[ch].abs() < 0.2, "eval output not centred");
        }
    }

    #[test]
    fn backward_input_gradient_matches_numerical() {
        let mut bn = BatchNorm2d::new(2);
        let input = Tensor::rand_uniform(&[2, 2, 3, 3], -1.0, 1.0, 3);
        // Use a non-uniform upstream gradient: with dL/dy = 1 everywhere the
        // batch-norm input gradient is identically zero (mean removal), which
        // would not exercise the formula.
        let weights = Tensor::rand_uniform(&[2, 2, 3, 3], 0.5, 1.5, 4);
        let out = bn.forward(&input, true);
        let loss = |o: &Tensor| -> f32 {
            o.as_slice()
                .iter()
                .zip(weights.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let _ = loss(&out);
        let grad_in = bn.backward(&weights);

        let eps = 1e-2f32;
        for &idx in &[0usize, 10, 20, 35] {
            let mut plus = input.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[idx] -= eps;
            let mut bn_p = BatchNorm2d::new(2);
            let mut bn_m = BatchNorm2d::new(2);
            let lp = loss(&bn_p.forward(&plus, true));
            let lm = loss(&bn_m.forward(&minus, true));
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_in.as_slice()[idx]).abs() < 2e-2,
                "bn input grad mismatch at {idx}: numeric {numeric} vs {}",
                grad_in.as_slice()[idx]
            );
        }
    }

    #[test]
    fn gamma_beta_gradients_match_numerical() {
        let mut bn = BatchNorm2d::new(2);
        let input = Tensor::rand_uniform(&[2, 2, 3, 3], -1.0, 1.0, 5);
        let out = bn.forward(&input, true);
        bn.backward(&Tensor::ones(out.shape()));
        // d(sum(out))/d(beta_c) = number of pixels of channel c.
        let pixels = (2 * 3 * 3) as f32;
        for ch in 0..2 {
            assert!((bn.grad_beta.as_slice()[ch] - pixels).abs() < 1e-3);
        }
    }

    #[test]
    fn train_and_eval_forward_diverge_once_running_stats_settle() {
        // Running stats start at mean 0 / var 1; feed a shifted distribution
        // so batch statistics and running statistics genuinely differ, then
        // check the two modes produce different outputs while eval == infer.
        let mut bn = BatchNorm2d::new(2);
        let input = Tensor::randn(&[4, 2, 3, 3], 11).map(|v| v * 3.0 + 5.0);
        let train_out = bn.forward(&input, true);
        let eval_out = bn.forward(&input, false);
        assert!(
            dsx_tensor::max_abs_diff(&train_out, &eval_out) > 0.1,
            "train-mode output must use batch statistics, not running ones"
        );
        assert!(dsx_tensor::allclose(&bn.infer(&input), &eval_out, 1e-6));
    }

    #[test]
    fn infer_matches_eval_forward_without_caching() {
        let mut bn = BatchNorm2d::new(3);
        // Populate non-trivial running statistics first.
        let warm = Tensor::randn(&[4, 3, 4, 4], 12).map(|v| v * 2.0 - 1.0);
        for _ in 0..5 {
            bn.forward(&warm, true);
        }
        assert!(bn.cached_normalized.is_some(), "training pass must cache");
        crate::layer::check_infer_parity(&mut bn, &[2, 3, 4, 4], 1e-6);
        assert!(
            bn.cached_normalized.is_none() && bn.cached_std_inv.is_none(),
            "eval forward must clear the backward cache, not keep a stale one"
        );
    }

    #[test]
    fn has_two_parameter_tensors() {
        let mut bn = BatchNorm2d::new(4);
        let mut count = 0;
        bn.visit_params(&mut |_p, _g| count += 1);
        assert_eq!(count, 2);
        assert_eq!(bn.num_params(), 8);
    }
}
