//! Convolution block factories: the standard block and the depthwise-
//! separable blocks (DW+PW, DW+GPW, DW+SCC) that the paper swaps in and out
//! of VGG / MobileNet / ResNet.

use crate::activation::ReLU;
use crate::conv::Conv2d;
use crate::norm::BatchNorm2d;
use crate::scc_layer::SccConv2d;
use crate::sequential::Sequential;
use dsx_core::{SccConfig, SccImplementation};

/// The second (channel-fusion) stage of a depthwise-separable block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelStage {
    /// Plain pointwise convolution (the MobileNet/Xception DW+PW baseline).
    Pointwise,
    /// Group pointwise convolution with `cg` groups (DW+GPW).
    GroupPointwise {
        /// Number of channel groups.
        cg: usize,
    },
    /// Sliding-channel convolution with `cg` groups and `co` overlap
    /// (DW+SCC — the paper's proposal).
    SlidingChannel {
        /// Number of channel groups.
        cg: usize,
        /// Input-channel overlap ratio in `[0, 1)`.
        co: f64,
        /// Which implementation executes the SCC kernel.
        implementation: SccImplementation,
    },
}

impl ChannelStage {
    /// Paper-style tag for tables (e.g. `DW+SCC-cg2-co50%`).
    pub fn tag(&self) -> String {
        match self {
            ChannelStage::Pointwise => "DW+PW".to_string(),
            ChannelStage::GroupPointwise { cg } => format!("DW+GPW-cg{cg}"),
            ChannelStage::SlidingChannel { cg, co, .. } => {
                format!("DW+SCC-cg{cg}-co{}%", (co * 100.0).round() as usize)
            }
        }
    }

    /// The largest group count this stage requires `cin` to be divisible by
    /// (1 for plain pointwise).
    pub fn group_requirement(&self) -> usize {
        match self {
            ChannelStage::Pointwise => 1,
            ChannelStage::GroupPointwise { cg } => *cg,
            ChannelStage::SlidingChannel { cg, .. } => *cg,
        }
    }
}

/// A standard convolution block: `Conv(k×k) → BatchNorm → ReLU`.
pub fn standard_conv_block(
    cin: usize,
    cout: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    seed: u64,
) -> Sequential {
    Sequential::new(format!("StdBlock({cin}->{cout})"))
        .push(Conv2d::new(cin, cout, kernel, stride, pad, seed).without_bias())
        .push(BatchNorm2d::new(cout))
        .push(ReLU::new())
}

/// A depthwise-separable block: `DW(3×3, stride) → BN → ReLU → <channel
/// stage> → BN → ReLU`, the drop-in replacement for a standard 3×3 block
/// that the paper's Table II/IV models use.
pub fn separable_block(
    cin: usize,
    cout: usize,
    stride: usize,
    stage: ChannelStage,
    seed: u64,
) -> Sequential {
    let mut block = Sequential::new(format!("{}({cin}->{cout})", stage.tag()));
    block.push_boxed(Box::new(
        Conv2d::depthwise(cin, 3, stride, 1, seed).without_bias(),
    ));
    block.push_boxed(Box::new(BatchNorm2d::new(cin)));
    block.push_boxed(Box::new(ReLU::new()));
    match stage {
        ChannelStage::Pointwise => {
            block.push_boxed(Box::new(
                Conv2d::pointwise(cin, cout, seed + 1).without_bias(),
            ));
        }
        ChannelStage::GroupPointwise { cg } => {
            block.push_boxed(Box::new(
                Conv2d::group_pointwise(cin, cout, cg, seed + 1).without_bias(),
            ));
        }
        ChannelStage::SlidingChannel {
            cg,
            co,
            implementation,
        } => {
            let cfg = SccConfig::new(cin, cout, cg, co)
                // lint: allow(panic) — documented builder contract: stage
                // tables are compile-time constants.
                .unwrap_or_else(|e| panic!("invalid SCC stage for cin={cin}, cout={cout}: {e}"));
            block.push_boxed(Box::new(SccConv2d::with_implementation(
                cfg,
                seed + 1,
                implementation,
            )));
        }
    }
    block.push_boxed(Box::new(BatchNorm2d::new(cout)));
    block.push_boxed(Box::new(ReLU::new()));
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use dsx_tensor::Tensor;

    #[test]
    fn standard_block_shapes_and_params() {
        let mut block = standard_conv_block(3, 16, 3, 1, 1, 1);
        let out = block.forward(&Tensor::randn(&[2, 3, 8, 8], 1), true);
        assert_eq!(out.shape(), &[2, 16, 8, 8]);
        // Conv without bias + BN gamma/beta.
        assert_eq!(block.num_params(), 16 * 3 * 9 + 32);
    }

    #[test]
    fn separable_blocks_produce_identical_shapes_across_stages() {
        let stages = [
            ChannelStage::Pointwise,
            ChannelStage::GroupPointwise { cg: 2 },
            ChannelStage::SlidingChannel {
                cg: 2,
                co: 0.5,
                implementation: SccImplementation::Dsxplore,
            },
        ];
        let input = Tensor::randn(&[1, 8, 6, 6], 2);
        for stage in stages {
            let mut block = separable_block(8, 16, 1, stage, 3);
            let out = block.forward(&input, true);
            assert_eq!(out.shape(), &[1, 16, 6, 6], "{}", stage.tag());
        }
    }

    #[test]
    fn scc_stage_has_same_params_as_gpw_and_fewer_than_pw() {
        let pw = separable_block(16, 32, 1, ChannelStage::Pointwise, 4).num_params();
        let gpw =
            separable_block(16, 32, 1, ChannelStage::GroupPointwise { cg: 2 }, 4).num_params();
        let scc = separable_block(
            16,
            32,
            1,
            ChannelStage::SlidingChannel {
                cg: 2,
                co: 0.5,
                implementation: SccImplementation::Dsxplore,
            },
            4,
        )
        .num_params();
        // SCC has a bias on its 1x1 stage in our implementation while the
        // GPW/PW stages are bias-free (BN follows); allow that small delta.
        assert!(scc <= gpw + 32);
        assert!(scc < pw);
    }

    #[test]
    fn strided_separable_block_halves_spatial_dims() {
        let mut block = separable_block(8, 16, 2, ChannelStage::Pointwise, 5);
        let out = block.forward(&Tensor::randn(&[1, 8, 8, 8], 3), true);
        assert_eq!(out.shape(), &[1, 16, 4, 4]);
    }

    #[test]
    fn block_backward_produces_input_shaped_gradient() {
        let mut block = separable_block(
            4,
            8,
            1,
            ChannelStage::SlidingChannel {
                cg: 2,
                co: 0.5,
                implementation: SccImplementation::Dsxplore,
            },
            6,
        );
        let input = Tensor::randn(&[2, 4, 5, 5], 4);
        let out = block.forward(&input, true);
        let grad = block.backward(&Tensor::ones(out.shape()));
        assert_eq!(grad.shape(), input.shape());
    }

    #[test]
    fn tags_match_paper_notation() {
        assert_eq!(ChannelStage::Pointwise.tag(), "DW+PW");
        assert_eq!(ChannelStage::GroupPointwise { cg: 4 }.tag(), "DW+GPW-cg4");
        assert_eq!(
            ChannelStage::SlidingChannel {
                cg: 2,
                co: 0.33,
                implementation: SccImplementation::Dsxplore
            }
            .tag(),
            "DW+SCC-cg2-co33%"
        );
    }

    #[test]
    fn group_requirement_reflects_stage() {
        assert_eq!(ChannelStage::Pointwise.group_requirement(), 1);
        assert_eq!(
            ChannelStage::GroupPointwise { cg: 8 }.group_requirement(),
            8
        );
    }
}
