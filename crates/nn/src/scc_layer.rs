//! [`Layer`] adapter around the sliding-channel convolution from `dsx-core`,
//! so SCC can be dropped into any model exactly where a pointwise or group
//! pointwise convolution would sit ("drop-in replacement of the existing
//! DSCs", paper §I).

use crate::layer::Layer;
use dsx_core::{BackendKind, SccConfig, SccImplementation, SlidingChannelConv2d};
use dsx_tensor::Tensor;

/// A sliding-channel 1×1 convolution as a trainable network layer.
pub struct SccConv2d {
    inner: SlidingChannelConv2d,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl SccConv2d {
    /// Creates an SCC layer with the given configuration and the DSXplore
    /// kernel implementation.
    pub fn new(cfg: SccConfig, seed: u64) -> Self {
        Self::with_implementation(cfg, seed, SccImplementation::Dsxplore)
    }

    /// Creates an SCC layer with an explicit implementation choice (used by
    /// the runtime comparison experiments).
    pub fn with_implementation(
        cfg: SccConfig,
        seed: u64,
        implementation: SccImplementation,
    ) -> Self {
        let inner = SlidingChannelConv2d::with_seed(cfg, seed).with_implementation(implementation);
        SccConv2d {
            grad_weight: Tensor::zeros(&[cfg.cout(), cfg.group_width()]),
            grad_bias: Tensor::zeros(&[cfg.cout()]),
            inner,
            cached_input: None,
        }
    }

    /// Removes the bias term (used when a batch norm immediately follows).
    pub fn without_bias(mut self) -> Self {
        self.inner = self.inner.without_bias();
        self
    }

    /// Selects the kernel execution backend of the wrapped operator.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.inner = self.inner.with_backend(backend);
        self
    }

    /// The wrapped operator.
    pub fn operator(&self) -> &SlidingChannelConv2d {
        &self.inner
    }

    /// The SCC configuration.
    pub fn config(&self) -> &SccConfig {
        self.inner.config()
    }
}

impl Layer for SccConv2d {
    fn name(&self) -> String {
        format!(
            "SccConv2d({}->{}, {})",
            self.config().cin(),
            self.config().cout(),
            self.config().tag()
        )
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        // Only the training path pays for the backward-pass input cache;
        // evaluation is a pure kernel call.
        self.cached_input = train.then(|| input.clone());
        self.inner.forward(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.inner.forward(input)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            // lint: allow(panic) — documented Layer contract: backward
            // requires a prior training-mode forward.
            .expect("SccConv2d::backward called before forward");
        let grads = self.inner.backward(input, grad_output);
        self.grad_weight.add_assign(&grads.grad_weight);
        self.grad_bias.add_assign(&grads.grad_bias);
        grads.grad_input
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(self.inner.weight_mut(), &mut self.grad_weight);
        // Split borrows: bias lives inside `inner`, its gradient here.
        if self.inner.bias().is_some() {
            let grad_bias = &mut self.grad_bias;
            if let Some(bias) = self.inner.bias_mut() {
                f(bias, grad_bias);
            }
        }
    }

    fn state(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        f("weight", self.inner.weight());
        if let Some(bias) = self.inner.bias() {
            f("bias", bias);
        }
    }

    fn load_state(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        f("weight", self.inner.weight_mut());
        if let Some(bias) = self.inner.bias_mut() {
            f("bias", bias);
        }
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![
            input_shape[0],
            self.config().cout(),
            input_shape[2],
            input_shape[3],
        ]
    }

    fn forward_macs(&self, input_shape: &[usize]) -> usize {
        self.config().forward_macs(input_shape[0], input_shape[2]) * input_shape[3]
            / input_shape[2].max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::check_input_gradient;

    fn layer() -> SccConv2d {
        SccConv2d::new(SccConfig::new(8, 16, 2, 0.5).unwrap(), 7)
    }

    #[test]
    fn forward_produces_cout_channels() {
        let mut l = layer();
        let out = l.forward(&Tensor::randn(&[2, 8, 5, 5], 1), true);
        assert_eq!(out.shape(), &[2, 16, 5, 5]);
        assert_eq!(l.output_shape(&[2, 8, 5, 5]), vec![2, 16, 5, 5]);
    }

    #[test]
    fn input_gradient_is_correct() {
        let mut l = layer();
        check_input_gradient(&mut l, &[1, 8, 4, 4], 2e-2);
    }

    #[test]
    fn params_are_visited_for_weight_and_bias() {
        let mut l = layer();
        let mut count = 0;
        l.visit_params(&mut |p, g| {
            assert_eq!(p.shape(), g.shape());
            count += 1;
        });
        assert_eq!(count, 2);
        assert_eq!(l.num_params(), 16 * 4 + 16);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut l = layer();
        let input = Tensor::randn(&[1, 8, 3, 3], 2);
        let out = l.forward(&input, true);
        l.backward(&Tensor::ones(out.shape()));
        let after_one = l.grad_weight.norm_sq();
        let out = l.forward(&input, true);
        l.backward(&Tensor::ones(out.shape()));
        assert!(l.grad_weight.norm_sq() > after_one);
        l.zero_grad();
        assert_eq!(l.grad_weight.norm_sq(), 0.0);
    }

    #[test]
    fn eval_forward_skips_the_input_cache() {
        let mut l = layer();
        let input = Tensor::randn(&[1, 8, 4, 4], 9);
        let eval = l.forward(&input, false);
        assert!(
            l.cached_input.is_none(),
            "forward(train=false) must not clone the input"
        );
        assert!(dsx_tensor::allclose(&l.infer(&input), &eval, 1e-6));
        l.forward(&input, true);
        assert!(l.cached_input.is_some());
        // A later eval pass clears the stale cache instead of keeping it.
        l.forward(&input, false);
        assert!(l.cached_input.is_none());
    }

    #[test]
    fn infer_matches_eval_forward() {
        for backend in [BackendKind::Naive, BackendKind::Blocked] {
            let mut l = layer().with_backend(backend);
            crate::layer::check_infer_parity(&mut l, &[2, 8, 5, 5], 1e-6);
        }
    }

    #[test]
    fn forward_macs_match_config_formula() {
        let l = layer();
        assert_eq!(l.forward_macs(&[2, 8, 6, 6]), l.config().forward_macs(2, 6));
    }

    #[test]
    fn different_implementations_are_interchangeable_as_layers() {
        let input = Tensor::randn(&[1, 8, 4, 4], 3);
        let cfg = SccConfig::new(8, 16, 2, 0.5).unwrap();
        let mut reference = SccConv2d::with_implementation(cfg, 7, SccImplementation::Dsxplore);
        let expected = reference.forward(&input, true);
        for implementation in SccImplementation::ALL {
            let mut l = SccConv2d::with_implementation(cfg, 7, implementation);
            let out = l.forward(&input, true);
            assert!(dsx_tensor::allclose(&out, &expected, 1e-4));
        }
    }

    #[test]
    fn backends_are_interchangeable_as_layers() {
        let input = Tensor::randn(&[1, 8, 4, 4], 5);
        let cfg = SccConfig::new(8, 16, 2, 0.5).unwrap();
        let mut naive = SccConv2d::new(cfg, 7).with_backend(BackendKind::Naive);
        let expected = naive.forward(&input, true);
        let naive_grad = naive.backward(&Tensor::ones(expected.shape()));
        let mut blocked = SccConv2d::new(cfg, 7).with_backend(BackendKind::Blocked);
        assert_eq!(blocked.operator().backend(), BackendKind::Blocked);
        let out = blocked.forward(&input, true);
        assert!(dsx_tensor::allclose(&out, &expected, 1e-4));
        let blocked_grad = blocked.backward(&Tensor::ones(expected.shape()));
        assert!(dsx_tensor::allclose(&blocked_grad, &naive_grad, 1e-4));
    }
}
