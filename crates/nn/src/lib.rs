//! # dsx-nn
//!
//! Neural-network layers, losses, optimizers and training loops for the
//! DSXplore reproduction.
//!
//! The crate provides everything needed to assemble and train the CNNs the
//! paper evaluates (VGG16/19, MobileNet, ResNet18/50 — built in
//! `dsx-models`) with any of the convolution schemes under study:
//!
//! * [`conv::Conv2d`] — standard / grouped / depthwise / (group) pointwise
//!   convolutions lowered to GEMM via im2col (the "library-backed" operators
//!   the paper's baselines rely on), backend-selectable like the SCC layer:
//!   the `blocked`/`tiled` backends run a register-tiled (pool-scheduled)
//!   GEMM, and the `swsum` backend runs [`swsum::conv2d_swsum`] — a direct
//!   sliding-window-sum (conv-as-FIR) kernel with no im2col buffer;
//! * [`scc_layer::SccConv2d`] — the sliding-channel convolution from
//!   `dsx-core`, usable as a drop-in replacement for the pointwise stage;
//! * [`blocks`] — factory functions for standard and depthwise-separable
//!   blocks (`DW+PW`, `DW+GPW`, `DW+SCC`);
//! * [`norm`], [`activation`], [`pool`], [`linear`], [`sequential`] — the
//!   rest of the layer zoo, each with hand-written backward passes;
//! * [`loss`], [`optim`], [`train`] — cross-entropy, SGD with momentum, and
//!   single-device / data-parallel training loops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod blocks;
pub mod conv;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod norm;
pub mod optim;
pub mod pool;
pub mod scc_layer;
pub mod sequential;
pub mod swsum;
pub mod train;

pub use activation::ReLU;
pub use blocks::{separable_block, standard_conv_block, ChannelStage};
pub use conv::Conv2d;
pub use layer::Layer;
pub use linear::{Flatten, Linear};
pub use loss::{accuracy, AverageMeter, CrossEntropyLoss};
pub use norm::BatchNorm2d;
pub use optim::{Sgd, StepLr};
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use scc_layer::SccConv2d;
pub use sequential::{LayerSummary, ResidualBlock, Sequential};
pub use swsum::conv2d_swsum;
pub use train::{data_parallel_step, evaluate, train_epoch, train_step, Batch, StepMetrics};
