//! Fully-connected layers and flattening.

use crate::layer::Layer;
use dsx_tensor::{init, Tensor};

/// A fully-connected (dense) layer: `y = x W^T + b` with `x` of shape
/// `[batch, in_features]`.
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Tensor, // [out, in]
    bias: Tensor,   // [out]
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a dense layer with Xavier-initialised weights.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        let weight = Tensor::from_vec(
            init::xavier_uniform(out_features * in_features, in_features, out_features, seed),
            &[out_features, in_features],
        );
        Linear {
            in_features,
            out_features,
            grad_weight: Tensor::zeros(weight.shape()),
            weight,
            bias: Tensor::zeros(&[out_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// The weight tensor (`[out_features, in_features]`).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }
}

impl Layer for Linear {
    fn name(&self) -> String {
        format!("Linear({}->{})", self.in_features, self.out_features)
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.cached_input = train.then(|| input.clone());
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.rank(), 2, "Linear expects [batch, features] input");
        assert_eq!(input.dim(1), self.in_features, "Linear feature mismatch");
        let mut out = input.matmul(&self.weight.transpose2());
        out.add_bias_rows(&self.bias);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            // lint: allow(panic) — documented Layer contract: backward
            // requires a prior training-mode forward.
            .expect("Linear::backward before forward");
        // grad_W = dY^T X ; grad_b = column sums of dY ; grad_X = dY W
        let gw = grad_output.transpose2().matmul(input);
        self.grad_weight.add_assign(&gw);
        self.grad_bias.add_assign(&grad_output.sum_rows());
        grad_output.matmul(&self.weight)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn state(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        f("weight", &self.weight);
        f("bias", &self.bias);
    }

    fn load_state(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        f("weight", &mut self.weight);
        f("bias", &mut self.bias);
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape[0], self.out_features]
    }

    fn forward_macs(&self, input_shape: &[usize]) -> usize {
        input_shape[0] * self.in_features * self.out_features
    }
}

/// Flattens an NCHW tensor to `[N, C*H*W]` (identity on rank-2 input).
pub struct Flatten {
    cached_input_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten {
            cached_input_shape: Vec::new(),
        }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Flatten {
    fn name(&self) -> String {
        "Flatten".into()
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.cached_input_shape = if train {
            input.shape().to_vec()
        } else {
            Vec::new()
        };
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let batch = input.dim(0);
        let features = input.numel() / batch.max(1);
        input.reshape(&[batch, features])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(
            !self.cached_input_shape.is_empty(),
            "Flatten::backward before forward"
        );
        grad_output.reshape(&self.cached_input_shape)
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let batch = input_shape[0];
        let features: usize = input_shape[1..].iter().product();
        vec![batch, features]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::check_input_gradient;
    use dsx_tensor::allclose;

    #[test]
    fn forward_matches_manual_matmul() {
        let mut l = Linear::new(3, 2, 1);
        let input = Tensor::randn(&[4, 3], 2);
        let out = l.forward(&input, true);
        assert_eq!(out.shape(), &[4, 2]);
        let mut expected = input.matmul(&l.weight().transpose2());
        expected.add_bias_rows(&l.bias);
        assert!(allclose(&out, &expected, 1e-6));
    }

    #[test]
    fn input_gradient_is_correct() {
        let mut l = Linear::new(4, 3, 3);
        check_input_gradient(&mut l, &[2, 4], 1e-2);
    }

    #[test]
    fn weight_and_bias_gradients_match_numerical() {
        let mut l = Linear::new(3, 2, 4);
        let input = Tensor::randn(&[2, 3], 5);
        let out = l.forward(&input, true);
        l.backward(&Tensor::ones(out.shape()));

        let eps = 1e-2f32;
        for &idx in &[0usize, 3, 5] {
            let mut lp = Linear::new(3, 2, 4);
            lp.weight.as_mut_slice()[idx] += eps;
            let mut lm = Linear::new(3, 2, 4);
            lm.weight.as_mut_slice()[idx] -= eps;
            let plus = lp.forward(&input, true).sum();
            let minus = lm.forward(&input, true).sum();
            let numeric = (plus - minus) / (2.0 * eps);
            assert!((numeric - l.grad_weight.as_slice()[idx]).abs() < 1e-2);
        }
        // Bias gradient with all-ones upstream is the batch size.
        assert!(l
            .grad_bias
            .as_slice()
            .iter()
            .all(|&v| (v - 2.0).abs() < 1e-4));
    }

    #[test]
    fn flatten_round_trips_shape() {
        let mut f = Flatten::new();
        let input = Tensor::arange(&[2, 3, 4, 4]);
        let out = f.forward(&input, true);
        assert_eq!(out.shape(), &[2, 48]);
        let back = f.backward(&out);
        assert_eq!(back.shape(), input.shape());
        assert_eq!(back.as_slice(), input.as_slice());
    }

    #[test]
    fn infer_matches_eval_forward_without_caching() {
        let mut l = Linear::new(4, 3, 8);
        crate::layer::check_infer_parity(&mut l, &[2, 4], 1e-6);
        assert!(l.cached_input.is_none(), "eval forward must not cache");
        let mut f = Flatten::new();
        crate::layer::check_infer_parity(&mut f, &[2, 3, 4, 4], 0.0);
        assert!(f.cached_input_shape.is_empty());
    }

    #[test]
    fn parameter_counts() {
        let mut l = Linear::new(10, 5, 6);
        assert_eq!(l.num_params(), 55);
        assert_eq!(Flatten::new().num_params(), 0);
    }

    #[test]
    fn macs_formula() {
        let l = Linear::new(512, 10, 7);
        assert_eq!(l.forward_macs(&[8, 512]), 8 * 512 * 10);
    }
}
