//! Standard, grouped, depthwise and (group) pointwise convolutions.
//!
//! These are the "off-the-shelf" convolution operators the paper's baselines
//! are built from. They are lowered to GEMM via `im2col` per channel group —
//! the same lowering cuDNN uses for the library-backed PyTorch operators the
//! paper compares against. The sliding-channel convolution deliberately does
//! *not* use this path (see `dsx-core`).
//!
//! Like [`crate::scc_layer::SccConv2d`], the layer carries a
//! [`BackendKind`] (defaulting to the process-wide
//! [`dsx_core::default_backend`]) that selects the execution strategy:
//!
//! | backend   | dense `Conv2d` path                                        |
//! |-----------|------------------------------------------------------------|
//! | `naive`   | im2col + the historical size-picked GEMM                   |
//! | `blocked` | im2col + the register-tiled GEMM, single caller thread     |
//! | `tiled`   | im2col + the register-tiled GEMM scheduled on the pool     |
//! | `swsum`   | direct sliding-window-sum kernel ([`crate::swsum`]), no    |
//! |           | im2col on the inference path; pooled GEMM when training    |

use crate::layer::Layer;
use dsx_core::{default_backend, BackendKind};
use dsx_tensor::conv::{col2im, conv_out_size, im2col};
use dsx_tensor::{init, GemmKernel, Tensor};

/// A 2-D convolution with optional channel groups.
///
/// Weight layout: `[Cout, Cin/groups, K, K]`; bias `[Cout]`.
pub struct Conv2d {
    cin: usize,
    cout: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    backend: BackendKind,
    weight: Tensor,
    bias: Option<Tensor>,
    grad_weight: Tensor,
    grad_bias: Tensor,
    // Cached per-group im2col matrices and the input shape from forward.
    cached_cols: Vec<Tensor>,
    cached_input_shape: Vec<usize>,
}

impl Conv2d {
    /// Creates a standard convolution (`groups = 1`).
    pub fn new(
        cin: usize,
        cout: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        Self::grouped(cin, cout, kernel, stride, pad, 1, seed)
    }

    /// Creates a grouped convolution.
    pub fn grouped(
        cin: usize,
        cout: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        groups: usize,
        seed: u64,
    ) -> Self {
        assert!(groups > 0, "groups must be positive");
        assert_eq!(
            cin % groups,
            0,
            "cin {cin} not divisible by groups {groups}"
        );
        assert_eq!(
            cout % groups,
            0,
            "cout {cout} not divisible by groups {groups}"
        );
        let cin_g = cin / groups;
        let fan_in = cin_g * kernel * kernel;
        let weight = Tensor::from_vec(
            init::kaiming_normal(cout * cin_g * kernel * kernel, fan_in, seed),
            &[cout, cin_g, kernel, kernel],
        );
        Conv2d {
            cin,
            cout,
            kernel,
            stride,
            pad,
            groups,
            backend: default_backend(),
            grad_weight: Tensor::zeros(weight.shape()),
            weight,
            bias: Some(Tensor::zeros(&[cout])),
            grad_bias: Tensor::zeros(&[cout]),
            cached_cols: Vec::new(),
            cached_input_shape: Vec::new(),
        }
    }

    /// A depthwise convolution: one `K × K` filter per input channel
    /// (`groups = cin`, `cout = cin`).
    pub fn depthwise(cin: usize, kernel: usize, stride: usize, pad: usize, seed: u64) -> Self {
        Self::grouped(cin, cin, kernel, stride, pad, cin, seed)
    }

    /// A pointwise (1×1, `groups = 1`) convolution.
    pub fn pointwise(cin: usize, cout: usize, seed: u64) -> Self {
        Self::grouped(cin, cout, 1, 1, 0, 1, seed)
    }

    /// A group pointwise (1×1, `groups = cg`) convolution.
    pub fn group_pointwise(cin: usize, cout: usize, cg: usize, seed: u64) -> Self {
        Self::grouped(cin, cout, 1, 1, 0, cg, seed)
    }

    /// Removes the bias term.
    pub fn without_bias(mut self) -> Self {
        self.bias = None;
        self
    }

    /// Selects the execution backend (see the module docs for the mapping
    /// from [`BackendKind`] to dense convolution strategy).
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// The execution backend this layer runs on.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The weight tensor.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias tensor, if the layer has one.
    pub fn bias(&self) -> Option<&Tensor> {
        self.bias.as_ref()
    }

    /// Number of channel groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// The spatial stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The zero padding applied to each spatial border.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// The GEMM kernel backing this layer's im2col path. `Naive` keeps the
    /// historical size-picked kernel (the perf-gate baseline); `Blocked`
    /// upgrades to the register-tiled kernel on the caller thread; `Tiled`
    /// and `Swsum` schedule register-tiled strips on the worker pool
    /// (`Swsum` only reaches a GEMM on the training path, where backward
    /// needs the cached im2col matrices).
    fn gemm_kernel(&self) -> GemmKernel {
        match self.backend {
            BackendKind::Naive => GemmKernel::Auto,
            BackendKind::Blocked => GemmKernel::RegTiled,
            BackendKind::Tiled | BackendKind::Swsum => GemmKernel::Pooled,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            conv_out_size(h, self.kernel, self.stride, self.pad),
            conv_out_size(w, self.kernel, self.stride, self.pad),
        )
    }

    /// The im2col + GEMM forward computation, shared by the training path
    /// (which keeps each group's lowered matrix for backward via `cache`)
    /// and the cache-free `infer` path.
    fn run_forward(&self, input: &Tensor, mut cache: Option<&mut Vec<Tensor>>) -> Tensor {
        assert_eq!(input.rank(), 4, "Conv2d expects NCHW input");
        assert_eq!(input.dim(1), self.cin, "Conv2d channel mismatch");
        // The sliding-window-sum backend computes outputs directly from the
        // input (no im2col), so it can only serve the cache-free path —
        // backward needs the lowered matrices and keeps the GEMM route.
        if cache.is_none() && self.backend == BackendKind::Swsum {
            return crate::swsum::conv2d_swsum(
                input,
                &self.weight,
                self.bias.as_ref(),
                self.stride,
                self.pad,
                self.groups,
            );
        }
        let (n, h, w) = (input.dim(0), input.dim(2), input.dim(3));
        let (oh, ow) = self.out_hw(h, w);
        let cin_g = self.cin / self.groups;
        let cout_g = self.cout / self.groups;
        let k2 = self.kernel * self.kernel;

        let mut output = Tensor::zeros(&[n, self.cout, oh, ow]);
        let out_plane = oh * ow;
        for g in 0..self.groups {
            // Slice this group's input channels and lower them.
            let group_input = if self.groups == 1 {
                input.clone()
            } else {
                input.narrow_channels(g * cin_g, cin_g)
            };
            let cols = im2col(&group_input, self.kernel, self.stride, self.pad);
            // Weight matrix of this group: [cout_g, cin_g * K * K].
            let w_start = g * cout_g * cin_g * k2;
            let w_mat = Tensor::from_vec(
                self.weight.as_slice()[w_start..w_start + cout_g * cin_g * k2].to_vec(),
                &[cout_g, cin_g * k2],
            );
            let out_mat = w_mat.matmul_with(&cols, self.gemm_kernel()); // [cout_g, n * oh * ow]
                                                                        // Scatter back into NCHW output.
            let out_data = output.as_mut_slice();
            let om = out_mat.as_slice();
            for oc in 0..cout_g {
                for img in 0..n {
                    let src = &om[oc * n * out_plane + img * out_plane
                        ..oc * n * out_plane + (img + 1) * out_plane];
                    let dst_base = (img * self.cout + g * cout_g + oc) * out_plane;
                    out_data[dst_base..dst_base + out_plane].copy_from_slice(src);
                }
            }
            if let Some(cache) = cache.as_deref_mut() {
                cache.push(cols);
            }
        }
        if let Some(bias) = &self.bias {
            output.add_bias_nchw(bias);
        }
        output
    }
}

impl Layer for Conv2d {
    fn name(&self) -> String {
        if self.groups == 1 && self.kernel == 1 {
            format!("PointwiseConv({}->{})", self.cin, self.cout)
        } else if self.groups == self.cin && self.cout == self.cin {
            format!("DepthwiseConv({}, k{})", self.cin, self.kernel)
        } else if self.groups > 1 {
            format!(
                "GroupConv({}->{}, k{}, g{})",
                self.cin, self.cout, self.kernel, self.groups
            )
        } else {
            format!("Conv2d({}->{}, k{})", self.cin, self.cout, self.kernel)
        }
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.cached_cols.clear();
        self.cached_input_shape.clear();
        if !train {
            return self.run_forward(input, None);
        }
        self.cached_input_shape = input.shape().to_vec();
        // Move the cache out so the shared `&self` helper can fill it.
        let mut cols = std::mem::take(&mut self.cached_cols);
        let output = self.run_forward(input, Some(&mut cols));
        self.cached_cols = cols;
        output
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.run_forward(input, None)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(
            !self.cached_cols.is_empty(),
            "Conv2d::backward called before forward"
        );
        let input_shape = self.cached_input_shape.clone();
        let (n, h, w) = (input_shape[0], input_shape[2], input_shape[3]);
        let (oh, ow) = self.out_hw(h, w);
        let cin_g = self.cin / self.groups;
        let cout_g = self.cout / self.groups;
        let k2 = self.kernel * self.kernel;
        let out_plane = oh * ow;
        assert_eq!(grad_output.shape(), &[n, self.cout, oh, ow]);

        // Bias gradient.
        if self.bias.is_some() {
            let gb = grad_output.sum_per_channel();
            self.grad_bias.add_assign(&gb);
        }

        let mut grad_input = Tensor::zeros(&input_shape);
        for g in 0..self.groups {
            // Re-pack this group's grad_output into [cout_g, n * oh * ow].
            let mut go_mat = Tensor::zeros(&[cout_g, n * out_plane]);
            {
                let gm = go_mat.as_mut_slice();
                let go = grad_output.as_slice();
                for oc in 0..cout_g {
                    for img in 0..n {
                        let src_base = (img * self.cout + g * cout_g + oc) * out_plane;
                        let dst_base = oc * n * out_plane + img * out_plane;
                        gm[dst_base..dst_base + out_plane]
                            .copy_from_slice(&go[src_base..src_base + out_plane]);
                    }
                }
            }
            let cols = &self.cached_cols[g];
            // grad_W = grad_out_mat * cols^T
            let gw_mat = go_mat.matmul_with(&cols.transpose2(), self.gemm_kernel()); // [cout_g, cin_g * k2]
            let w_start = g * cout_g * cin_g * k2;
            for (i, v) in gw_mat.as_slice().iter().enumerate() {
                self.grad_weight.as_mut_slice()[w_start + i] += v;
            }
            // grad_cols = W^T * grad_out_mat, then col2im.
            let w_mat = Tensor::from_vec(
                self.weight.as_slice()[w_start..w_start + cout_g * cin_g * k2].to_vec(),
                &[cout_g, cin_g * k2],
            );
            let grad_cols = w_mat.transpose2().matmul_with(&go_mat, self.gemm_kernel());
            let group_grad_input = col2im(
                &grad_cols,
                &[n, cin_g, h, w],
                self.kernel,
                self.stride,
                self.pad,
            );
            // Place the group's input gradient into the right channels.
            if self.groups == 1 {
                grad_input.add_assign(&group_grad_input);
            } else {
                let gi = grad_input.as_mut_slice();
                let gg = group_grad_input.as_slice();
                let plane = h * w;
                for img in 0..n {
                    for c in 0..cin_g {
                        let dst_base = (img * self.cin + g * cin_g + c) * plane;
                        let src_base = (img * cin_g + c) * plane;
                        for p in 0..plane {
                            gi[dst_base + p] += gg[src_base + p];
                        }
                    }
                }
            }
        }
        grad_input
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        if let Some(bias) = self.bias.as_mut() {
            f(bias, &mut self.grad_bias);
        }
    }

    fn state(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        f("weight", &self.weight);
        if let Some(bias) = self.bias.as_ref() {
            f("bias", bias);
        }
    }

    fn load_state(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        f("weight", &mut self.weight);
        if let Some(bias) = self.bias.as_mut() {
            f("bias", bias);
        }
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (n, h, w) = (input_shape[0], input_shape[2], input_shape[3]);
        let (oh, ow) = self.out_hw(h, w);
        vec![n, self.cout, oh, ow]
    }

    fn forward_macs(&self, input_shape: &[usize]) -> usize {
        let out = self.output_shape(input_shape);
        let cin_g = self.cin / self.groups;
        out.iter().product::<usize>() * cin_g * self.kernel * self.kernel
    }
}

/// Reference direct (non-GEMM) convolution used only by the test-suite.
#[doc(hidden)]
pub fn conv2d_reference(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    groups: usize,
) -> Tensor {
    let (n, cin, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let cout = weight.dim(0);
    let cin_g = weight.dim(1);
    let k = weight.dim(2);
    assert_eq!(cin / groups, cin_g);
    let cout_g = cout / groups;
    let oh = conv_out_size(h, k, stride, pad);
    let ow = conv_out_size(w, k, stride, pad);
    let mut out = Tensor::zeros(&[n, cout, oh, ow]);
    for img in 0..n {
        for oc in 0..cout {
            let g = oc / cout_g;
            let b = bias.map(|t| t.as_slice()[oc]).unwrap_or(0.0);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b;
                    for ic in 0..cin_g {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * stride + ky) as isize - pad as isize;
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += weight.at(&[oc, ic, ky, kx])
                                    * input.at4(img, g * cin_g + ic, iy as usize, ix as usize);
                            }
                        }
                    }
                    *out.at4_mut(img, oc, oy, ox) = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{check_infer_parity, check_input_gradient};
    use dsx_tensor::{allclose, TEST_TOLERANCE};

    #[test]
    fn standard_conv_matches_reference() {
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, 42);
        let input = Tensor::randn(&[2, 3, 6, 6], 1);
        let out = conv.forward(&input, true);
        let reference = conv2d_reference(&input, conv.weight(), conv.bias.as_ref(), 1, 1, 1);
        assert!(allclose(&out, &reference, TEST_TOLERANCE));
        assert_eq!(out.shape(), &[2, 8, 6, 6]);
    }

    #[test]
    fn strided_conv_matches_reference() {
        let mut conv = Conv2d::new(4, 6, 3, 2, 1, 43);
        let input = Tensor::randn(&[1, 4, 8, 8], 2);
        let out = conv.forward(&input, true);
        let reference = conv2d_reference(&input, conv.weight(), conv.bias.as_ref(), 2, 1, 1);
        assert!(allclose(&out, &reference, TEST_TOLERANCE));
        assert_eq!(out.shape(), &[1, 6, 4, 4]);
    }

    #[test]
    fn grouped_conv_matches_reference() {
        let mut conv = Conv2d::grouped(8, 12, 3, 1, 1, 4, 44);
        let input = Tensor::randn(&[2, 8, 5, 5], 3);
        let out = conv.forward(&input, true);
        let reference = conv2d_reference(&input, conv.weight(), conv.bias.as_ref(), 1, 1, 4);
        assert!(allclose(&out, &reference, TEST_TOLERANCE));
    }

    #[test]
    fn depthwise_conv_matches_reference() {
        let mut conv = Conv2d::depthwise(6, 3, 1, 1, 45);
        let input = Tensor::randn(&[1, 6, 7, 7], 4);
        let out = conv.forward(&input, true);
        let reference = conv2d_reference(&input, conv.weight(), conv.bias.as_ref(), 1, 1, 6);
        assert!(allclose(&out, &reference, TEST_TOLERANCE));
        assert_eq!(out.shape(), &[1, 6, 7, 7]);
    }

    #[test]
    fn pointwise_conv_is_1x1() {
        let mut conv = Conv2d::pointwise(4, 10, 46);
        let input = Tensor::randn(&[2, 4, 3, 3], 5);
        let out = conv.forward(&input, true);
        assert_eq!(out.shape(), &[2, 10, 3, 3]);
        assert_eq!(conv.num_params(), 10 * 4 + 10);
    }

    #[test]
    fn group_pointwise_param_count_is_divided_by_groups() {
        let mut gpw = Conv2d::group_pointwise(16, 32, 4, 47);
        assert_eq!(gpw.num_params(), 32 * 4 + 32);
        let mut pw = Conv2d::pointwise(16, 32, 47);
        assert_eq!(pw.num_params(), 32 * 16 + 32);
    }

    #[test]
    fn input_gradient_is_correct_standard() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 48);
        check_input_gradient(&mut conv, &[1, 2, 4, 4], 2e-2);
    }

    #[test]
    fn input_gradient_is_correct_grouped() {
        let mut conv = Conv2d::grouped(4, 4, 3, 1, 1, 2, 49);
        check_input_gradient(&mut conv, &[1, 4, 4, 4], 2e-2);
    }

    #[test]
    fn input_gradient_is_correct_strided() {
        let mut conv = Conv2d::new(2, 2, 3, 2, 1, 50);
        check_input_gradient(&mut conv, &[1, 2, 6, 6], 2e-2);
    }

    #[test]
    fn weight_gradient_matches_numerical() {
        let mut conv = Conv2d::new(2, 2, 3, 1, 1, 51).without_bias();
        let input = Tensor::randn(&[1, 2, 4, 4], 6);
        let out = conv.forward(&input, true);
        let grad_out = Tensor::ones(out.shape());
        conv.backward(&grad_out);
        let analytic = conv.grad_weight.clone();

        let eps = 1e-2f32;
        for &idx in &[0usize, 7, 17, 35] {
            let mut wp = conv.weight.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = conv.weight.clone();
            wm.as_mut_slice()[idx] -= eps;
            let lp = conv2d_reference(&input, &wp, None, 1, 1, 1).sum();
            let lm = conv2d_reference(&input, &wm, None, 1, 1, 1).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.as_slice()[idx]).abs() < 5e-2,
                "weight grad mismatch at {idx}"
            );
        }
    }

    #[test]
    fn macs_formula_matches_known_case() {
        // VGG-style 3x3 conv, 64->128 at 32x32: 128*32*32*64*9 MACs per image.
        let conv = Conv2d::new(64, 128, 3, 1, 1, 52);
        assert_eq!(conv.forward_macs(&[1, 64, 32, 32]), 128 * 32 * 32 * 64 * 9);
    }

    #[test]
    fn output_shape_accounts_for_stride_and_padding() {
        let conv = Conv2d::new(3, 16, 7, 2, 3, 53);
        assert_eq!(conv.output_shape(&[8, 3, 224, 224]), vec![8, 16, 112, 112]);
    }

    #[test]
    fn zero_grad_clears_accumulated_gradients() {
        let mut conv = Conv2d::new(2, 2, 1, 1, 0, 54);
        let input = Tensor::randn(&[1, 2, 3, 3], 7);
        let out = conv.forward(&input, true);
        conv.backward(&Tensor::ones(out.shape()));
        assert!(conv.grad_weight.norm_sq() > 0.0);
        conv.zero_grad();
        assert_eq!(conv.grad_weight.norm_sq(), 0.0);
    }

    #[test]
    fn infer_matches_eval_forward_without_caching() {
        for mut conv in [
            Conv2d::new(3, 8, 3, 1, 1, 60),
            Conv2d::grouped(8, 12, 3, 2, 1, 4, 61),
            Conv2d::depthwise(6, 3, 1, 1, 62),
            Conv2d::pointwise(4, 10, 63),
        ] {
            let cin = conv.cin;
            check_infer_parity(&mut conv, &[2, cin, 6, 6], TEST_TOLERANCE);
            assert!(
                conv.cached_cols.is_empty() && conv.cached_input_shape.is_empty(),
                "eval forward must not cache im2col matrices"
            );
        }
    }

    #[test]
    fn every_backend_agrees_with_the_reference_in_train_and_eval() {
        let input = Tensor::randn(&[2, 4, 6, 6], 8);
        for backend in BackendKind::ALL {
            let mut conv = Conv2d::grouped(4, 6, 3, 1, 1, 2, 56).with_backend(backend);
            assert_eq!(conv.backend(), backend);
            let want = conv2d_reference(&input, conv.weight(), conv.bias(), 1, 1, 2);
            let train_out = conv.forward(&input, true);
            assert!(
                allclose(&train_out, &want, TEST_TOLERANCE),
                "train forward diverges on {backend}"
            );
            let eval_out = conv.infer(&input);
            assert!(
                allclose(&eval_out, &want, TEST_TOLERANCE),
                "infer diverges on {backend}"
            );
        }
    }

    #[test]
    fn backend_defaults_to_the_process_wide_choice() {
        let conv = Conv2d::new(2, 2, 3, 1, 1, 57);
        assert_eq!(conv.backend(), dsx_core::default_backend());
    }

    #[test]
    #[should_panic]
    fn rejects_channel_mismatch() {
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, 55);
        conv.forward(&Tensor::zeros(&[1, 4, 6, 6]), true);
    }
}
