//! Training and evaluation loops, including the simulated multi-device
//! data-parallel step used by the multi-GPU scalability experiment (Fig. 14).

use crate::layer::Layer;
use crate::loss::{accuracy, AverageMeter, CrossEntropyLoss};
use crate::optim::Sgd;
use dsx_tensor::Tensor;

/// One labelled mini-batch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Input images, `[N, C, H, W]`.
    pub images: Tensor,
    /// One class index per image.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Creates a batch after validating that images and labels agree.
    pub fn new(images: Tensor, labels: Vec<usize>) -> Self {
        assert_eq!(images.dim(0), labels.len(), "one label per image required");
        Batch { images, labels }
    }

    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Splits the batch into `shards` near-equal shards (the per-device
    /// micro-batches of data-parallel training). Shards at the front get the
    /// remainder samples.
    pub fn shard(&self, shards: usize) -> Vec<Batch> {
        assert!(shards > 0, "need at least one shard");
        let n = self.len();
        let (c, h, w) = (self.images.dim(1), self.images.dim(2), self.images.dim(3));
        let base = n / shards;
        let rem = n % shards;
        let mut out = Vec::new();
        let mut start = 0usize;
        for s in 0..shards {
            let len = base + usize::from(s < rem);
            if len == 0 {
                continue;
            }
            let plane = c * h * w;
            let data = self.images.as_slice()[start * plane..(start + len) * plane].to_vec();
            out.push(Batch::new(
                Tensor::from_vec(data, &[len, c, h, w]),
                self.labels[start..start + len].to_vec(),
            ));
            start += len;
        }
        out
    }
}

/// Loss / accuracy pair returned by the training and evaluation helpers.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepMetrics {
    /// Mean cross-entropy loss.
    pub loss: f32,
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f32,
}

/// Runs one optimisation step on a single batch and returns its metrics.
pub fn train_step(
    model: &mut dyn Layer,
    optimizer: &mut Sgd,
    loss_fn: &CrossEntropyLoss,
    batch: &Batch,
) -> StepMetrics {
    let logits = model.forward(&batch.images, true);
    let (loss, grad) = loss_fn.forward(&logits, &batch.labels);
    let acc = accuracy(&logits, &batch.labels);
    model.zero_grad();
    model.backward(&grad);
    optimizer.step(model);
    StepMetrics {
        loss,
        accuracy: acc,
    }
}

/// Runs one *data-parallel* optimisation step: the batch is sharded over
/// `world_size` logical devices, every shard runs forward/backward on the
/// same model replica (sequentially here — the cost model in `dsx-gpusim`
/// captures the parallel timing), the gradients sum up weighted by shard
/// size, and a single optimizer step applies the averaged gradient. This is
/// numerically equivalent to synchronous data-parallel SGD with gradient
/// all-reduce.
pub fn data_parallel_step(
    model: &mut dyn Layer,
    optimizer: &mut Sgd,
    loss_fn: &CrossEntropyLoss,
    batch: &Batch,
    world_size: usize,
) -> StepMetrics {
    assert!(world_size > 0, "world_size must be at least 1");
    let shards = batch.shard(world_size);
    let total = batch.len() as f32;
    model.zero_grad();
    let mut loss_meter = AverageMeter::new();
    let mut acc_meter = AverageMeter::new();
    for shard in &shards {
        let logits = model.forward(&shard.images, true);
        let (loss, mut grad) = loss_fn.forward(&logits, &shard.labels);
        loss_meter.update(loss, shard.len());
        acc_meter.update(accuracy(&logits, &shard.labels), shard.len());
        // The per-shard loss gradient is normalised by the shard size; weight
        // it so the accumulated gradient matches the full-batch gradient.
        grad.scale_in_place(shard.len() as f32 / total);
        model.backward(&grad);
    }
    optimizer.step(model);
    StepMetrics {
        loss: loss_meter.mean(),
        accuracy: acc_meter.mean(),
    }
}

/// Trains for one epoch over the given batches.
pub fn train_epoch(
    model: &mut dyn Layer,
    optimizer: &mut Sgd,
    loss_fn: &CrossEntropyLoss,
    batches: &[Batch],
) -> StepMetrics {
    let mut loss_meter = AverageMeter::new();
    let mut acc_meter = AverageMeter::new();
    for batch in batches {
        let metrics = train_step(model, optimizer, loss_fn, batch);
        loss_meter.update(metrics.loss, batch.len());
        acc_meter.update(metrics.accuracy, batch.len());
    }
    StepMetrics {
        loss: loss_meter.mean(),
        accuracy: acc_meter.mean(),
    }
}

/// Evaluates the model (no parameter updates, evaluation-mode layers).
pub fn evaluate(
    model: &mut dyn Layer,
    loss_fn: &CrossEntropyLoss,
    batches: &[Batch],
) -> StepMetrics {
    let mut loss_meter = AverageMeter::new();
    let mut acc_meter = AverageMeter::new();
    for batch in batches {
        let logits = model.forward(&batch.images, false);
        let (loss, _) = loss_fn.forward(&logits, &batch.labels);
        loss_meter.update(loss, batch.len());
        acc_meter.update(accuracy(&logits, &batch.labels), batch.len());
    }
    StepMetrics {
        loss: loss_meter.mean(),
        accuracy: acc_meter.mean(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::Conv2d;
    use crate::linear::Linear;
    use crate::pool::GlobalAvgPool;
    use crate::sequential::Sequential;
    use dsx_tensor::allclose;

    fn toy_model(seed: u64) -> Sequential {
        Sequential::new("toy")
            .push(Conv2d::new(1, 4, 3, 1, 1, seed))
            .push(crate::activation::ReLU::new())
            .push(GlobalAvgPool::new())
            .push(Linear::new(4, 2, seed + 1))
    }

    /// A linearly-separable toy batch: class = brightness of the image.
    fn toy_batch(n: usize, seed: u64) -> Batch {
        let mut images = Tensor::zeros(&[n, 1, 4, 4]);
        let mut labels = Vec::with_capacity(n);
        let noise = Tensor::rand_uniform(&[n * 16], -0.1, 0.1, seed);
        for i in 0..n {
            let class = i % 2;
            labels.push(class);
            for p in 0..16 {
                images.as_mut_slice()[i * 16 + p] =
                    class as f32 * 1.0 - 0.5 + noise.as_slice()[i * 16 + p];
            }
        }
        Batch::new(images, labels)
    }

    #[test]
    fn training_reduces_loss_and_reaches_high_accuracy() {
        let mut model = toy_model(1);
        let mut sgd = Sgd::with_config(0.1, 0.9, 0.0);
        let loss_fn = CrossEntropyLoss::new();
        let batch = toy_batch(16, 2);
        let first = train_step(&mut model, &mut sgd, &loss_fn, &batch);
        let mut last = first;
        for _ in 0..30 {
            last = train_step(&mut model, &mut sgd, &loss_fn, &batch);
        }
        assert!(last.loss < first.loss);
        assert!(last.accuracy >= 0.9, "accuracy {}", last.accuracy);
    }

    #[test]
    fn shard_partitions_all_samples() {
        let batch = toy_batch(10, 3);
        let shards = batch.shard(3);
        assert_eq!(shards.iter().map(Batch::len).sum::<usize>(), 10);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].len(), 4); // remainder goes to the front
    }

    #[test]
    fn data_parallel_step_matches_single_device_step() {
        let batch = toy_batch(8, 4);
        let loss_fn = CrossEntropyLoss::new();

        let mut single = toy_model(7);
        let mut sgd_single = Sgd::new(0.05);
        train_step(&mut single, &mut sgd_single, &loss_fn, &batch);

        let mut multi = toy_model(7);
        let mut sgd_multi = Sgd::new(0.05);
        data_parallel_step(&mut multi, &mut sgd_multi, &loss_fn, &batch, 4);

        // After one step from identical initialisation the parameters must
        // match (same effective gradient).
        let mut params_single = Vec::new();
        single.visit_params(&mut |p, _| params_single.push(p.clone()));
        let mut params_multi = Vec::new();
        multi.visit_params(&mut |p, _| params_multi.push(p.clone()));
        // BatchNorm-free model => exact equivalence up to float error.
        for (a, b) in params_single.iter().zip(params_multi.iter()) {
            assert!(allclose(a, b, 1e-4));
        }
    }

    #[test]
    fn evaluate_does_not_change_parameters() {
        let mut model = toy_model(9);
        let loss_fn = CrossEntropyLoss::new();
        let batch = toy_batch(6, 5);
        let mut before = Vec::new();
        model.visit_params(&mut |p, _| before.push(p.clone()));
        evaluate(&mut model, &loss_fn, &[batch]);
        let mut after = Vec::new();
        model.visit_params(&mut |p, _| after.push(p.clone()));
        for (a, b) in before.iter().zip(after.iter()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn train_epoch_aggregates_batches() {
        let mut model = toy_model(11);
        let mut sgd = Sgd::new(0.05);
        let loss_fn = CrossEntropyLoss::new();
        let batches = vec![toy_batch(8, 6), toy_batch(8, 7)];
        let metrics = train_epoch(&mut model, &mut sgd, &loss_fn, &batches);
        assert!(metrics.loss > 0.0);
        assert!((0.0..=1.0).contains(&metrics.accuracy));
    }

    #[test]
    #[should_panic]
    fn batch_requires_matching_lengths() {
        Batch::new(Tensor::zeros(&[2, 1, 2, 2]), vec![0]);
    }
}
