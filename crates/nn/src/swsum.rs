//! Dense convolution as a sliding window sum (conv-as-FIR), no im2col.
//!
//! The Snytsar sliding-window-sum papers ("Sliding Window Sum Algorithms
//! for Deep Neural Networks", "Accelerating Machine Learning Primitives on
//! Commodity Hardware") observe that on commodity CPUs a convolution can
//! beat the im2col + GEMM lowering by treating each output row as a FIR
//! filter over input rows: for every kernel tap `(ky, kx)` the matching
//! input row is shifted by `kx`, scaled by one hoisted weight, and
//! accumulated into the output row with a unit-stride fused loop. Nothing
//! is materialised — the `C·K·K × N·oh·ow` column matrix that im2col
//! builds (often an order of magnitude larger than the input) never
//! exists.
//!
//! Parallel decomposition: one output row per logical task, scheduled via
//! [`par::parallel_for_each_chunk_mut`] (which batches short rows per pool
//! claim). Each row has exactly one writer and accumulates its taps in a
//! fixed `(ic, ky, kx)` order independent of the thread count, so results
//! are **bit-identical at 1 and N pool threads** — the same determinism
//! contract as the tiled SCC backend.

use dsx_tensor::conv::conv_out_size;
use dsx_tensor::{par, Tensor};

/// Dense (grouped) 2-D convolution via sliding window sums.
///
/// * `input`  — `[N, Cin, H, W]`
/// * `weight` — `[Cout, Cin/groups, K, K]`
/// * `bias`   — optional `[Cout]`
///
/// Returns `[N, Cout, oh, ow]`, numerically equivalent to the im2col +
/// GEMM path within floating-point re-association of the tap order.
pub fn conv2d_swsum(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    groups: usize,
) -> Tensor {
    assert_eq!(input.rank(), 4, "conv2d_swsum expects NCHW input");
    assert_eq!(weight.rank(), 4, "conv2d_swsum expects OIKK weights");
    let (n, cin, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let (cout, cin_g, kernel) = (weight.dim(0), weight.dim(1), weight.dim(2));
    assert_eq!(weight.dim(3), kernel, "square kernels only");
    assert_eq!(cin_g * groups, cin, "weight/groups disagree with Cin");
    assert_eq!(cout % groups, 0, "Cout not divisible by groups");
    let cout_g = cout / groups;
    let oh = conv_out_size(h, kernel, stride, pad);
    let ow = conv_out_size(w, kernel, stride, pad);

    let mut output = Tensor::zeros(&[n, cout, oh, ow]);
    if n == 0 || oh == 0 || ow == 0 {
        return output;
    }
    let src = input.as_slice();
    let w_data = weight.as_slice();
    let b_data = bias.map(|b| b.as_slice());

    // One chunk per output row (img, oc, oy); the grain heuristic batches
    // CIFAR-scale rows per pool claim.
    par::parallel_for_each_chunk_mut(output.as_mut_slice(), ow, |row_idx, out_row| {
        let oy = row_idx % oh;
        let oc = (row_idx / oh) % cout;
        let img = row_idx / (oh * cout);
        let g = oc / cout_g;

        let init = b_data.map(|b| b[oc]).unwrap_or(0.0);
        out_row.fill(init);

        for ic_local in 0..cin_g {
            let ic = g * cin_g + ic_local;
            // Hoisted per-tap weight base: the K² filter taps of this
            // (output, input) channel pair.
            let w_base = (oc * cin_g + ic_local) * kernel * kernel;
            for ky in 0..kernel {
                let iy = (oy * stride + ky) as isize - pad as isize;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                let in_row = &src[((img * cin + ic) * h + iy as usize) * w
                    ..((img * cin + ic) * h + iy as usize + 1) * w];
                let taps = &w_data[w_base + ky * kernel..w_base + (ky + 1) * kernel];
                if stride == 1 && kernel == 3 {
                    // The dominant dense-conv case gets a fused kernel: one
                    // pass over the row applying all three taps, instead of
                    // three load-accumulate-store sweeps.
                    accumulate_row_k3(out_row, in_row, taps, pad, w);
                } else {
                    for (kx, &tap) in taps.iter().enumerate() {
                        accumulate_tap(out_row, in_row, tap, kx, stride, pad, w);
                    }
                }
            }
        }
    });
    output
}

/// Fused FIR step for a unit-stride 3-tap row: applies one `(ic, ky)`
/// weight triple in a single pass. Edge columns (where some tap falls off
/// the input row) run a scalar ascending-`kx` loop; the interior runs a
/// three-slice zip LLVM autovectorizes. The per-element accumulation order
/// is fixed, so results stay bit-identical at any pool thread count.
#[inline(always)]
fn accumulate_row_k3(out_row: &mut [f32], in_row: &[f32], taps: &[f32], pad: usize, w: usize) {
    let ow = out_row.len();
    // Interior: ox - pad >= 0 and ox - pad + 2 < w.
    let ox_lo = pad.min(ow);
    let ox_hi = (w + pad).saturating_sub(2).clamp(ox_lo, ow);
    let scalar_edge = |out_row: &mut [f32], range: core::ops::Range<usize>| {
        for ox in range {
            let mut acc = out_row[ox];
            for (kx, &tap) in taps.iter().enumerate() {
                let ix = (ox + kx) as isize - pad as isize;
                if ix >= 0 && ix < w as isize {
                    acc += tap * in_row[ix as usize];
                }
            }
            out_row[ox] = acc;
        }
    };
    scalar_edge(out_row, 0..ox_lo);
    scalar_edge(out_row, ox_hi..ow);
    if ox_lo < ox_hi {
        let len = ox_hi - ox_lo;
        let base = ox_lo - pad;
        let s0 = &in_row[base..base + len];
        let s1 = &in_row[base + 1..base + 1 + len];
        let s2 = &in_row[base + 2..base + 2 + len];
        let (t0, t1, t2) = (taps[0], taps[1], taps[2]);
        for (((o, &a), &b), &c) in out_row[ox_lo..ox_hi].iter_mut().zip(s0).zip(s1).zip(s2) {
            *o += t0 * a + t1 * b + t2 * c;
        }
    }
}

/// Accumulates one kernel tap into an output row: the generic FIR step.
/// For unit stride the valid `ox` range maps to a contiguous shifted slice
/// of the input row, so the update is a unit-stride AXPY LLVM
/// autovectorizes; strided convolutions take the scalar gather.
#[inline(always)]
fn accumulate_tap(
    out_row: &mut [f32],
    in_row: &[f32],
    tap: f32,
    kx: usize,
    stride: usize,
    pad: usize,
    w: usize,
) {
    let ow = out_row.len();
    if stride == 1 {
        // ix = ox + kx - pad must land in [0, w).
        let ox0 = pad.saturating_sub(kx);
        let ox1 = ow.min((w + pad).saturating_sub(kx));
        if ox0 >= ox1 {
            return;
        }
        let ix0 = ox0 + kx - pad;
        let src = &in_row[ix0..ix0 + (ox1 - ox0)];
        for (o, s) in out_row[ox0..ox1].iter_mut().zip(src.iter()) {
            *o += tap * *s;
        }
    } else {
        for (ox, o) in out_row.iter_mut().enumerate() {
            let ix = (ox * stride + kx) as isize - pad as isize;
            if ix >= 0 && ix < w as isize {
                *o += tap * in_row[ix as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{conv2d_reference, Conv2d};
    use crate::layer::Layer;
    use dsx_tensor::{allclose, TEST_TOLERANCE};

    fn check(conv: &Conv2d, input_shape: &[usize], seed: u64) {
        let input = Tensor::randn(input_shape, seed);
        let got = conv2d_swsum(
            &input,
            conv.weight(),
            conv.bias(),
            conv.stride(),
            conv.pad(),
            conv.groups(),
        );
        let want = conv2d_reference(
            &input,
            conv.weight(),
            conv.bias(),
            conv.stride(),
            conv.pad(),
            conv.groups(),
        );
        assert!(
            allclose(&got, &want, TEST_TOLERANCE),
            "swsum diverges from the direct reference for {}",
            conv.name()
        );
    }

    #[test]
    fn matches_reference_on_standard_strided_and_grouped_shapes() {
        check(&Conv2d::new(3, 8, 3, 1, 1, 42), &[2, 3, 6, 6], 1);
        check(&Conv2d::new(4, 6, 3, 2, 1, 43), &[1, 4, 8, 8], 2);
        check(&Conv2d::grouped(8, 12, 3, 1, 1, 4, 44), &[2, 8, 5, 5], 3);
        check(&Conv2d::depthwise(6, 3, 1, 1, 45), &[1, 6, 7, 7], 4);
        check(&Conv2d::pointwise(4, 10, 46), &[2, 4, 3, 3], 5);
        // Non-square planes, no padding, kernel larger than stride.
        check(&Conv2d::new(2, 5, 3, 1, 0, 47), &[1, 2, 4, 9], 6);
        check(&Conv2d::new(2, 3, 2, 2, 0, 48), &[1, 2, 6, 10], 7);
    }

    #[test]
    fn results_are_bit_identical_across_pool_thread_counts() {
        let conv = Conv2d::new(4, 8, 3, 1, 1, 50);
        let input = Tensor::randn(&[2, 4, 32, 32], 51);
        let run = || {
            conv2d_swsum(
                &input,
                conv.weight(),
                conv.bias(),
                conv.stride(),
                conv.pad(),
                conv.groups(),
            )
        };
        dsx_tensor::set_num_threads(1);
        let single = run();
        dsx_tensor::set_num_threads(4);
        let pooled = run();
        dsx_tensor::set_num_threads(0);
        assert_eq!(single.as_slice(), pooled.as_slice());
    }

    #[test]
    fn empty_batch_produces_an_empty_output() {
        let conv = Conv2d::new(2, 3, 3, 1, 1, 52);
        let out = conv2d_swsum(
            &Tensor::zeros(&[0, 2, 4, 4]),
            conv.weight(),
            conv.bias(),
            1,
            1,
            1,
        );
        assert_eq!(out.shape(), &[0, 3, 4, 4]);
    }
}
