//! Losses and classification metrics.

use dsx_tensor::Tensor;

/// Softmax cross-entropy loss over class logits.
///
/// `forward` returns the mean loss over the batch together with the gradient
/// with respect to the logits (ready to feed into the last layer's
/// `backward`), which is how the training loops in this workspace consume it.
pub struct CrossEntropyLoss;

impl CrossEntropyLoss {
    /// Creates the loss.
    pub fn new() -> Self {
        CrossEntropyLoss
    }

    /// Computes the mean cross-entropy of `logits` (`[batch, classes]`)
    /// against integer `targets` and the gradient with respect to the logits.
    pub fn forward(&self, logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
        assert_eq!(logits.rank(), 2, "logits must be [batch, classes]");
        let (batch, classes) = (logits.dim(0), logits.dim(1));
        assert_eq!(batch, targets.len(), "one target per batch row required");
        assert!(
            targets.iter().all(|&t| t < classes),
            "target class out of range"
        );

        let log_probs = logits.log_softmax_rows();
        let probs = logits.softmax_rows();

        let mut loss = 0.0f32;
        let mut grad = probs.clone();
        let g = grad.as_mut_slice();
        for (row, &target) in targets.iter().enumerate() {
            loss -= log_probs.as_slice()[row * classes + target];
            g[row * classes + target] -= 1.0;
        }
        let scale = 1.0 / batch as f32;
        grad.scale_in_place(scale);
        (loss * scale, grad)
    }
}

impl Default for CrossEntropyLoss {
    fn default() -> Self {
        Self::new()
    }
}

/// Fraction of rows whose argmax equals the target class.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    assert_eq!(logits.rank(), 2, "logits must be [batch, classes]");
    assert_eq!(logits.dim(0), targets.len());
    if targets.is_empty() {
        return 0.0;
    }
    let predictions = logits.argmax_rows();
    let correct = predictions
        .iter()
        .zip(targets.iter())
        .filter(|(p, t)| p == t)
        .count();
    correct as f32 / targets.len() as f32
}

/// Running average helper for losses/accuracies across batches.
#[derive(Debug, Default, Clone)]
pub struct AverageMeter {
    sum: f64,
    count: usize,
}

impl AverageMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation with a weight (typically the batch size).
    pub fn update(&mut self, value: f32, weight: usize) {
        self.sum += value as f64 * weight as f64;
        self.count += weight;
    }

    /// The weighted mean of all observations so far (0 if empty).
    pub fn mean(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum / self.count as f64) as f32
        }
    }

    /// Number of weighted observations.
    pub fn count(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_is_ln_classes_for_uniform_logits() {
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::zeros(&[4, 10]);
        let (l, grad) = loss.forward(&logits, &[0, 1, 2, 3]);
        assert!((l - (10.0f32).ln()).abs() < 1e-5);
        assert_eq!(grad.shape(), &[4, 10]);
    }

    #[test]
    fn loss_decreases_when_correct_logit_grows() {
        let loss = CrossEntropyLoss::new();
        let mut logits = Tensor::zeros(&[1, 3]);
        let (l0, _) = loss.forward(&logits, &[1]);
        logits.as_mut_slice()[1] = 3.0;
        let (l1, _) = loss.forward(&logits, &[1]);
        assert!(l1 < l0);
    }

    #[test]
    fn gradient_matches_numerical_derivative() {
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::randn(&[2, 4], 9);
        let targets = [2usize, 0];
        let (_, grad) = loss.forward(&logits, &targets);
        let eps = 1e-3f32;
        for idx in 0..logits.numel() {
            let mut plus = logits.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = logits.clone();
            minus.as_mut_slice()[idx] -= eps;
            let (lp, _) = loss.forward(&plus, &targets);
            let (lm, _) = loss.forward(&minus, &targets);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.as_slice()[idx]).abs() < 1e-3,
                "grad mismatch at {idx}"
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::randn(&[3, 5], 10);
        let (_, grad) = loss.forward(&logits, &[1, 4, 0]);
        for row in 0..3 {
            let s: f32 = grad.as_slice()[row * 5..(row + 1) * 5].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_target() {
        CrossEntropyLoss::new().forward(&Tensor::zeros(&[1, 3]), &[3]);
    }

    #[test]
    fn accuracy_counts_correct_predictions() {
        let logits = Tensor::from_vec(
            vec![
                0.1, 0.9, 0.0, // -> 1 (correct)
                0.8, 0.1, 0.1, // -> 0 (wrong, target 2)
                0.0, 0.0, 1.0, // -> 2 (correct)
                1.0, 0.0, 0.0, // -> 0 (correct)
            ],
            &[4, 3],
        );
        let acc = accuracy(&logits, &[1, 2, 2, 0]);
        assert!((acc - 0.75).abs() < 1e-6);
    }

    #[test]
    fn average_meter_weights_batches() {
        let mut meter = AverageMeter::new();
        meter.update(1.0, 10);
        meter.update(3.0, 30);
        assert!((meter.mean() - 2.5).abs() < 1e-6);
        assert_eq!(meter.count(), 40);
    }

    #[test]
    fn empty_meter_and_empty_accuracy_are_zero() {
        assert_eq!(AverageMeter::new().mean(), 0.0);
        assert_eq!(accuracy(&Tensor::zeros(&[0, 3]), &[]), 0.0);
    }
}
