//! Spatial pooling layers.

use crate::layer::Layer;
use dsx_tensor::Tensor;

/// Max pooling over non-overlapping (or strided) windows.
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    // Flat input index of the argmax for every output element.
    cached_argmax: Option<Vec<usize>>,
    cached_input_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with a square window.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0);
        MaxPool2d {
            kernel,
            stride,
            cached_argmax: None,
            cached_input_shape: Vec::new(),
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        )
    }

    /// Window-max scan; fills `argmax` (flat input index per output element)
    /// only when the training path needs it for backward routing.
    fn run_forward(&self, input: &Tensor, mut argmax: Option<&mut Vec<usize>>) -> Tensor {
        assert_eq!(input.rank(), 4, "MaxPool2d expects NCHW input");
        let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        assert!(
            h >= self.kernel && w >= self.kernel,
            "input smaller than window"
        );
        let (oh, ow) = self.out_hw(h, w);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        if let Some(am) = argmax.as_deref_mut() {
            am.clear();
            am.resize(n * c * oh * ow, 0);
        }
        let x = input.as_slice();
        let o = out.as_mut_slice();
        for img in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                let idx = ((img * c + ch) * h + iy) * w + ix;
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let out_idx = ((img * c + ch) * oh + oy) * ow + ox;
                        o[out_idx] = best;
                        if let Some(am) = argmax.as_deref_mut() {
                            am[out_idx] = best_idx;
                        }
                    }
                }
            }
        }
        out
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> String {
        format!("MaxPool2d(k{}, s{})", self.kernel, self.stride)
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.cached_argmax = None;
        self.cached_input_shape.clear();
        if !train {
            return self.run_forward(input, None);
        }
        let mut argmax = Vec::new();
        let out = self.run_forward(input, Some(&mut argmax));
        self.cached_argmax = Some(argmax);
        self.cached_input_shape = input.shape().to_vec();
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.run_forward(input, None)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let argmax = self
            .cached_argmax
            .as_ref()
            // lint: allow(panic) — documented Layer contract: backward
            // requires a prior training-mode forward.
            .expect("MaxPool2d::backward before forward");
        let mut grad_input = Tensor::zeros(&self.cached_input_shape);
        let gi = grad_input.as_mut_slice();
        for (out_idx, &in_idx) in argmax.iter().enumerate() {
            gi[in_idx] += grad_output.as_slice()[out_idx];
        }
        grad_input
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (oh, ow) = self.out_hw(input_shape[2], input_shape[3]);
        vec![input_shape[0], input_shape[1], oh, ow]
    }
}

/// Average pooling over square windows.
pub struct AvgPool2d {
    kernel: usize,
    stride: usize,
    cached_input_shape: Vec<usize>,
}

impl AvgPool2d {
    /// Creates an average-pool layer.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0);
        AvgPool2d {
            kernel,
            stride,
            cached_input_shape: Vec::new(),
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        )
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> String {
        format!("AvgPool2d(k{}, s{})", self.kernel, self.stride)
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.cached_input_shape = if train {
            input.shape().to_vec()
        } else {
            Vec::new()
        };
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.rank(), 4, "AvgPool2d expects NCHW input");
        let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        let (oh, ow) = self.out_hw(h, w);
        let inv = 1.0 / (self.kernel * self.kernel) as f32;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let x = input.as_slice();
        let o = out.as_mut_slice();
        for img in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                acc += x[((img * c + ch) * h + iy) * w + ix];
                            }
                        }
                        o[((img * c + ch) * oh + oy) * ow + ox] = acc * inv;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = &self.cached_input_shape;
        assert!(!shape.is_empty(), "AvgPool2d::backward before forward");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (oh, ow) = self.out_hw(h, w);
        let inv = 1.0 / (self.kernel * self.kernel) as f32;
        let mut grad_input = Tensor::zeros(shape);
        let gi = grad_input.as_mut_slice();
        let go = grad_output.as_slice();
        for img in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go[((img * c + ch) * oh + oy) * ow + ox] * inv;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                gi[((img * c + ch) * h + iy) * w + ix] += g;
                            }
                        }
                    }
                }
            }
        }
        grad_input
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (oh, ow) = self.out_hw(input_shape[2], input_shape[3]);
        vec![input_shape[0], input_shape[1], oh, ow]
    }
}

/// Global average pooling: collapses each channel plane to a single value,
/// producing a rank-2 `[N, C]` tensor ready for a classifier head.
pub struct GlobalAvgPool {
    cached_input_shape: Vec<usize>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool {
            cached_input_shape: Vec::new(),
        }
    }
}

impl Default for GlobalAvgPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> String {
        "GlobalAvgPool".into()
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.cached_input_shape = if train {
            input.shape().to_vec()
        } else {
            Vec::new()
        };
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.rank(), 4, "GlobalAvgPool expects NCHW input");
        let (n, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
        let plane = h * w;
        let inv = 1.0 / plane as f32;
        let mut out = Tensor::zeros(&[n, c]);
        let x = input.as_slice();
        let o = out.as_mut_slice();
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * plane;
                o[img * c + ch] = x[base..base + plane].iter().sum::<f32>() * inv;
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = &self.cached_input_shape;
        assert!(!shape.is_empty(), "GlobalAvgPool::backward before forward");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let plane = h * w;
        let inv = 1.0 / plane as f32;
        let mut grad_input = Tensor::zeros(shape);
        let gi = grad_input.as_mut_slice();
        for img in 0..n {
            for ch in 0..c {
                let g = grad_output.as_slice()[img * c + ch] * inv;
                let base = (img * c + ch) * plane;
                for p in 0..plane {
                    gi[base + p] = g;
                }
            }
        }
        grad_input
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape[0], input_shape[1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::check_input_gradient;

    #[test]
    fn maxpool_picks_window_maximum() {
        let mut pool = MaxPool2d::new(2, 2);
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        );
        let out = pool.forward(&input, true);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new(2, 2);
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        pool.forward(&input, true);
        let grad = pool.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]));
        assert_eq!(grad.as_slice(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn avgpool_averages_window() {
        let mut pool = AvgPool2d::new(2, 2);
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let out = pool.forward(&input, true);
        assert_eq!(out.as_slice(), &[2.5]);
    }

    #[test]
    fn avgpool_gradient_is_uniform() {
        let mut pool = AvgPool2d::new(2, 2);
        check_input_gradient(&mut pool, &[1, 2, 4, 4], 1e-2);
    }

    #[test]
    fn global_avg_pool_collapses_spatial_dims() {
        let mut pool = GlobalAvgPool::new();
        let input = Tensor::ones(&[2, 3, 4, 4]).scale(2.0);
        let out = pool.forward(&input, true);
        assert_eq!(out.shape(), &[2, 3]);
        assert!(out.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn global_avg_pool_gradient_is_correct() {
        let mut pool = GlobalAvgPool::new();
        check_input_gradient(&mut pool, &[1, 2, 3, 3], 1e-2);
    }

    #[test]
    fn output_shapes_are_consistent_with_forward() {
        let mut mp = MaxPool2d::new(2, 2);
        let input = Tensor::randn(&[2, 4, 8, 8], 1);
        assert_eq!(
            mp.forward(&input, true).shape(),
            mp.output_shape(&[2, 4, 8, 8]).as_slice()
        );
        let mut gap = GlobalAvgPool::new();
        assert_eq!(
            gap.forward(&input, true).shape(),
            gap.output_shape(&[2, 4, 8, 8]).as_slice()
        );
    }

    #[test]
    fn infer_matches_eval_forward_without_caching() {
        let mut mp = MaxPool2d::new(2, 2);
        crate::layer::check_infer_parity(&mut mp, &[2, 3, 6, 6], 0.0);
        assert!(mp.cached_argmax.is_none() && mp.cached_input_shape.is_empty());
        let mut ap = AvgPool2d::new(2, 2);
        crate::layer::check_infer_parity(&mut ap, &[2, 3, 6, 6], 0.0);
        assert!(ap.cached_input_shape.is_empty());
        let mut gap = GlobalAvgPool::new();
        crate::layer::check_infer_parity(&mut gap, &[2, 3, 6, 6], 0.0);
        assert!(gap.cached_input_shape.is_empty());
    }

    #[test]
    fn pools_have_no_parameters() {
        assert_eq!(MaxPool2d::new(2, 2).num_params(), 0);
        assert_eq!(AvgPool2d::new(2, 2).num_params(), 0);
        assert_eq!(GlobalAvgPool::new().num_params(), 0);
    }
}
