//! Sequential container and residual blocks.

use crate::activation::ReLU;
use crate::conv::Conv2d;
use crate::layer::Layer;
use crate::norm::BatchNorm2d;
use dsx_tensor::Tensor;

/// A container that runs layers one after another and backpropagates through
/// them in reverse order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    name: String,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new(name: impl Into<String>) -> Self {
        Sequential {
            layers: Vec::new(),
            name: name.into(),
        }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the container.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to the contained layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// A per-layer summary (name, output shape, parameters, forward MACs) for
    /// a given input shape.
    pub fn summary(&mut self, input_shape: &[usize]) -> Vec<LayerSummary> {
        let mut shape = input_shape.to_vec();
        let mut rows = Vec::with_capacity(self.layers.len());
        for layer in self.layers.iter_mut() {
            let macs = layer.forward_macs(&shape);
            let out_shape = layer.output_shape(&shape);
            rows.push(LayerSummary {
                name: layer.name(),
                output_shape: out_shape.clone(),
                params: layer.num_params(),
                macs,
            });
            shape = out_shape;
        }
        rows
    }
}

/// One row of [`Sequential::summary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSummary {
    /// Layer name.
    pub name: String,
    /// Output shape for the summary's input shape.
    pub output_shape: Vec<usize>,
    /// Trainable parameter count.
    pub params: usize,
    /// Forward multiply-accumulates.
    pub macs: usize,
}

impl Layer for Sequential {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            // span_with only formats (and interns) the label when tracing
            // is enabled, so the disabled path stays allocation-free.
            let _span = dsx_obs::span_with("layer", || format!("{i}:{}", layer.name()));
            x = layer.forward(&x, train);
        }
        x
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let _span = dsx_obs::span_with("layer", || format!("{i}:{}", layer.name()));
            x = layer.infer(&x);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for layer in self.layers.iter_mut() {
            layer.visit_params(f);
        }
    }

    fn state(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        for (idx, layer) in self.layers.iter().enumerate() {
            layer.state(&mut |name, tensor| f(&format!("{idx}.{name}"), tensor));
        }
    }

    fn load_state(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        for (idx, layer) in self.layers.iter_mut().enumerate() {
            layer.load_state(&mut |name, tensor| f(&format!("{idx}.{name}"), tensor));
        }
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let mut shape = input_shape.to_vec();
        for layer in self.layers.iter() {
            shape = layer.output_shape(&shape);
        }
        shape
    }

    fn forward_macs(&self, input_shape: &[usize]) -> usize {
        let mut shape = input_shape.to_vec();
        let mut macs = 0usize;
        for layer in self.layers.iter() {
            macs += layer.forward_macs(&shape);
            shape = layer.output_shape(&shape);
        }
        macs
    }
}

/// A residual block: `output = ReLU(main(x) + shortcut(x))`.
///
/// The main path is an arbitrary [`Sequential`]; the shortcut is either the
/// identity (when shapes match) or a projection (1×1 strided convolution +
/// batch norm), matching the ResNet "basic" and "bottleneck" blocks used in
/// the paper's ResNet18/50 experiments.
pub struct ResidualBlock {
    main: Sequential,
    shortcut: Option<Sequential>,
    relu: ReLU,
    cached_main_out: Option<Tensor>,
    cached_shortcut_out: Option<Tensor>,
}

impl ResidualBlock {
    /// Creates a residual block with an identity shortcut.
    pub fn identity(main: Sequential) -> Self {
        ResidualBlock {
            main,
            shortcut: None,
            relu: ReLU::new(),
            cached_main_out: None,
            cached_shortcut_out: None,
        }
    }

    /// Creates a residual block with a projection shortcut (1×1 convolution
    /// with the given stride followed by batch norm).
    pub fn projection(main: Sequential, cin: usize, cout: usize, stride: usize, seed: u64) -> Self {
        let shortcut = Sequential::new("shortcut")
            .push(Conv2d::grouped(cin, cout, 1, stride, 0, 1, seed).without_bias())
            .push(BatchNorm2d::new(cout));
        ResidualBlock {
            main,
            shortcut: Some(shortcut),
            relu: ReLU::new(),
            cached_main_out: None,
            cached_shortcut_out: None,
        }
    }
}

impl Layer for ResidualBlock {
    fn name(&self) -> String {
        if self.shortcut.is_some() {
            "ResidualBlock(projection)".into()
        } else {
            "ResidualBlock(identity)".into()
        }
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let main_out = self.main.forward(input, train);
        let shortcut_out = match self.shortcut.as_mut() {
            Some(s) => s.forward(input, train),
            None => input.clone(),
        };
        assert_eq!(
            main_out.shape(),
            shortcut_out.shape(),
            "residual branches must produce identical shapes"
        );
        let sum = main_out.add(&shortcut_out);
        if train {
            self.cached_main_out = Some(main_out);
            self.cached_shortcut_out = Some(shortcut_out);
        } else {
            self.cached_main_out = None;
            self.cached_shortcut_out = None;
        }
        self.relu.forward(&sum, train)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let main_out = self.main.infer(input);
        let shortcut_out = match self.shortcut.as_ref() {
            Some(s) => s.infer(input),
            None => input.clone(),
        };
        assert_eq!(
            main_out.shape(),
            shortcut_out.shape(),
            "residual branches must produce identical shapes"
        );
        self.relu.infer(&main_out.add(&shortcut_out))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let grad_sum = self.relu.backward(grad_output);
        let grad_main = self.main.backward(&grad_sum);
        let grad_shortcut = match self.shortcut.as_mut() {
            Some(s) => s.backward(&grad_sum),
            None => grad_sum,
        };
        grad_main.add(&grad_shortcut)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.main.visit_params(f);
        if let Some(s) = self.shortcut.as_mut() {
            s.visit_params(f);
        }
    }

    fn state(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        self.main
            .state(&mut |name, tensor| f(&format!("main.{name}"), tensor));
        if let Some(s) = self.shortcut.as_ref() {
            s.state(&mut |name, tensor| f(&format!("shortcut.{name}"), tensor));
        }
    }

    fn load_state(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        self.main
            .load_state(&mut |name, tensor| f(&format!("main.{name}"), tensor));
        if let Some(s) = self.shortcut.as_mut() {
            s.load_state(&mut |name, tensor| f(&format!("shortcut.{name}"), tensor));
        }
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        self.main.output_shape(input_shape)
    }

    fn forward_macs(&self, input_shape: &[usize]) -> usize {
        self.main.forward_macs(input_shape)
            + self
                .shortcut
                .as_ref()
                .map(|s| s.forward_macs(input_shape))
                .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::check_input_gradient;
    use crate::linear::{Flatten, Linear};
    use crate::pool::GlobalAvgPool;

    fn tiny_net() -> Sequential {
        Sequential::new("tiny")
            .push(Conv2d::new(2, 4, 3, 1, 1, 1))
            .push(BatchNorm2d::new(4))
            .push(ReLU::new())
            .push(GlobalAvgPool::new())
            .push(Linear::new(4, 3, 2))
    }

    #[test]
    fn forward_chains_layers() {
        let mut net = tiny_net();
        let out = net.forward(&Tensor::randn(&[2, 2, 8, 8], 1), true);
        assert_eq!(out.shape(), &[2, 3]);
        assert_eq!(net.output_shape(&[2, 2, 8, 8]), vec![2, 3]);
    }

    #[test]
    fn infer_emits_one_span_per_layer_when_tracing() {
        let net = tiny_net();
        dsx_obs::enable(true);
        net.infer(&Tensor::randn(&[1, 2, 8, 8], 7));
        dsx_obs::enable(false);
        let layer_spans: Vec<String> = dsx_obs::trace::collected_events()
            .into_iter()
            .filter(|e| e.cat == "layer")
            .map(|e| e.name.to_string())
            .collect();
        // One span per layer of the tiny net, labelled "index:name". Other
        // tests may have traced too, so assert containment, not equality.
        for (i, expected) in ["0:Conv2d", "1:BatchNorm2d", "2:ReLU"].iter().enumerate() {
            assert!(
                layer_spans.iter().any(|name| name.starts_with(expected)),
                "missing span {i} ({expected}) in {layer_spans:?}"
            );
        }
    }

    #[test]
    fn backward_chains_in_reverse() {
        let mut net = Sequential::new("t")
            .push(Conv2d::new(2, 3, 3, 1, 1, 3))
            .push(ReLU::new());
        check_input_gradient(&mut net, &[1, 2, 4, 4], 2e-2);
    }

    #[test]
    fn state_names_are_prefixed_unique_and_cover_running_stats() {
        let mut net = tiny_net();
        let mut names = Vec::new();
        net.state(&mut |name, tensor| {
            assert!(tensor.numel() > 0, "{name} is empty");
            names.push(name.to_string());
        });
        // conv weight+bias, bn gamma/beta/running_mean/running_var, linear
        // weight+bias; the stateless ReLU and pool contribute nothing.
        assert_eq!(
            names,
            vec![
                "0.weight",
                "0.bias",
                "1.gamma",
                "1.beta",
                "1.running_mean",
                "1.running_var",
                "4.weight",
                "4.bias",
            ]
        );
        // load_state visits the same tensors under the same names, in the
        // same order — the contract checkpoint loading relies on.
        let mut mut_names = Vec::new();
        net.load_state(&mut |name, _tensor| mut_names.push(name.to_string()));
        assert_eq!(names, mut_names);
    }

    #[test]
    fn load_state_overwrites_affect_inference() {
        let mut src = tiny_net();
        let mut dst = tiny_net();
        // Make the two nets differ, then stream src's state into dst.
        src.load_state(&mut |_name, tensor| {
            for v in tensor.as_mut_slice() {
                *v += 0.125;
            }
        });
        let mut copies = std::collections::HashMap::new();
        src.state(&mut |name, tensor| {
            copies.insert(name.to_string(), tensor.clone());
        });
        dst.load_state(&mut |name, tensor| {
            *tensor = copies.remove(name).expect("state name mismatch");
        });
        assert!(copies.is_empty(), "unvisited records: {copies:?}");
        let input = Tensor::randn(&[2, 2, 8, 8], 11);
        let a = src.infer(&input);
        let b = dst.infer(&input);
        assert_eq!(a.as_slice(), b.as_slice(), "state copy must be bit-exact");
    }

    #[test]
    fn summary_accumulates_params_and_macs() {
        let mut net = tiny_net();
        let rows = net.summary(&[1, 2, 8, 8]);
        assert_eq!(rows.len(), 5);
        let total_params: usize = rows.iter().map(|r| r.params).sum();
        assert_eq!(total_params, net.num_params());
        assert!(rows[0].macs > 0);
        assert_eq!(rows.last().unwrap().output_shape, vec![1, 3]);
    }

    #[test]
    fn flatten_works_inside_sequential() {
        let mut net = Sequential::new("flat")
            .push(Conv2d::new(1, 2, 3, 1, 1, 5))
            .push(Flatten::new())
            .push(Linear::new(2 * 4 * 4, 5, 6));
        let out = net.forward(&Tensor::randn(&[3, 1, 4, 4], 2), true);
        assert_eq!(out.shape(), &[3, 5]);
    }

    #[test]
    fn identity_residual_block_gradient_is_correct() {
        let main = Sequential::new("main")
            .push(Conv2d::new(2, 2, 3, 1, 1, 7).without_bias())
            .push(BatchNorm2d::new(2));
        let mut block = ResidualBlock::identity(main);
        let out = block.forward(&Tensor::randn(&[1, 2, 4, 4], 3), true);
        assert_eq!(out.shape(), &[1, 2, 4, 4]);
    }

    #[test]
    fn projection_residual_block_changes_shape() {
        let main = Sequential::new("main")
            .push(Conv2d::new(2, 4, 3, 2, 1, 8).without_bias())
            .push(BatchNorm2d::new(4));
        let mut block = ResidualBlock::projection(main, 2, 4, 2, 9);
        let out = block.forward(&Tensor::randn(&[1, 2, 8, 8], 4), true);
        assert_eq!(out.shape(), &[1, 4, 4, 4]);
        assert_eq!(block.output_shape(&[1, 2, 8, 8]), vec![1, 4, 4, 4]);
        // Backward must run without shape errors and produce an input-shaped
        // gradient.
        let grad = block.backward(&Tensor::ones(&[1, 4, 4, 4]));
        assert_eq!(grad.shape(), &[1, 2, 8, 8]);
    }

    #[test]
    fn residual_block_params_include_both_branches() {
        let main = Sequential::new("main").push(Conv2d::new(2, 4, 3, 2, 1, 10).without_bias());
        let mut with_proj = ResidualBlock::projection(main, 2, 4, 2, 11);
        let main2 = Sequential::new("main").push(Conv2d::new(2, 4, 3, 2, 1, 10).without_bias());
        let mut main_only = ResidualBlock::identity(main2);
        assert!(with_proj.num_params() > main_only.num_params());
    }

    #[test]
    fn sequential_infer_matches_eval_forward() {
        let mut net = tiny_net();
        // Shift the batch-norm running stats away from their defaults first.
        for _ in 0..3 {
            net.forward(&Tensor::randn(&[4, 2, 8, 8], 6), true);
        }
        crate::layer::check_infer_parity(&mut net, &[2, 2, 8, 8], 1e-5);
    }

    #[test]
    fn residual_block_infer_matches_eval_forward() {
        let main = Sequential::new("main")
            .push(Conv2d::new(2, 4, 3, 2, 1, 12).without_bias())
            .push(BatchNorm2d::new(4));
        let mut block = ResidualBlock::projection(main, 2, 4, 2, 13);
        block.forward(&Tensor::randn(&[2, 2, 8, 8], 7), true);
        crate::layer::check_infer_parity(&mut block, &[2, 2, 8, 8], 1e-5);
        assert!(
            block.cached_main_out.is_none() && block.cached_shortcut_out.is_none(),
            "eval forward must clear the branch caches"
        );
    }

    #[test]
    fn shared_model_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Sequential>();
        assert_send_sync::<std::sync::Arc<dyn Layer>>();
    }

    #[test]
    fn sequential_len_and_empty() {
        let net = Sequential::new("x");
        assert!(net.is_empty());
        let net = net.push(ReLU::new());
        assert_eq!(net.len(), 1);
    }
}
