//! Optimizers.

use crate::layer::Layer;
use dsx_tensor::Tensor;

/// Stochastic gradient descent with momentum and weight decay — the
/// optimizer used by the paper's CIFAR-10 / ImageNet training runs.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    /// One velocity buffer per parameter tensor, in visiting order.
    velocities: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self::with_config(lr, 0.0, 0.0)
    }

    /// SGD with momentum and (decoupled-into-the-gradient) weight decay.
    pub fn with_config(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocities: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (e.g. for a step decay schedule).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update step to every parameter of `model`, then leaves the
    /// gradients untouched (call [`Layer::zero_grad`] before the next
    /// backward pass).
    pub fn step(&mut self, model: &mut dyn Layer) {
        let mut index = 0usize;
        let lr = self.lr;
        let momentum = self.momentum;
        let weight_decay = self.weight_decay;
        let velocities = &mut self.velocities;
        model.visit_params(&mut |param, grad| {
            if velocities.len() <= index {
                velocities.push(Tensor::zeros(param.shape()));
            }
            let velocity = &mut velocities[index];
            assert_eq!(
                velocity.shape(),
                param.shape(),
                "parameter {index} changed shape between optimizer steps"
            );
            let v = velocity.as_mut_slice();
            let p = param.as_mut_slice();
            let g = grad.as_slice();
            for i in 0..p.len() {
                let grad_i = g[i] + weight_decay * p[i];
                v[i] = momentum * v[i] + grad_i;
                p[i] -= lr * v[i];
            }
            index += 1;
        });
    }

    /// Convenience: zero gradients of the whole model.
    pub fn zero_grad(&self, model: &mut dyn Layer) {
        model.zero_grad();
    }
}

/// Step learning-rate schedule: multiplies the rate by `gamma` every
/// `step_size` epochs.
#[derive(Debug, Clone, Copy)]
pub struct StepLr {
    base_lr: f32,
    step_size: usize,
    gamma: f32,
}

impl StepLr {
    /// Creates a schedule.
    pub fn new(base_lr: f32, step_size: usize, gamma: f32) -> Self {
        assert!(step_size > 0);
        StepLr {
            base_lr,
            step_size,
            gamma,
        }
    }

    /// Learning rate at a given epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.base_lr * self.gamma.powi((epoch / self.step_size) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::loss::CrossEntropyLoss;
    use crate::sequential::Sequential;

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let mut model = Sequential::new("m").push(Linear::new(2, 2, 1));
        let mut sgd = Sgd::new(0.1);
        let input = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]);
        let loss_fn = CrossEntropyLoss::new();

        let before = {
            let out = model.forward(&input, true);
            loss_fn.forward(&out, &[0]).0
        };
        for _ in 0..20 {
            let out = model.forward(&input, true);
            let (_, grad) = loss_fn.forward(&out, &[0]);
            model.zero_grad();
            model.backward(&grad);
            sgd.step(&mut model);
        }
        let after = {
            let out = model.forward(&input, true);
            loss_fn.forward(&out, &[0]).0
        };
        assert!(after < before, "loss should decrease: {before} -> {after}");
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let run = |momentum: f32| -> f32 {
            let mut model = Sequential::new("m").push(Linear::new(4, 2, 2));
            let mut sgd = Sgd::with_config(0.05, momentum, 0.0);
            let input = Tensor::randn(&[8, 4], 3);
            let targets: Vec<usize> = (0..8).map(|i| i % 2).collect();
            let loss_fn = CrossEntropyLoss::new();
            let mut last = 0.0;
            for _ in 0..30 {
                let out = model.forward(&input, true);
                let (l, grad) = loss_fn.forward(&out, &targets);
                last = l;
                model.zero_grad();
                model.backward(&grad);
                sgd.step(&mut model);
            }
            last
        };
        assert!(run(0.9) <= run(0.0) * 1.05);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut model = Sequential::new("m").push(Linear::new(3, 3, 4));
        let norm_before: f32 = {
            let mut n = 0.0;
            model.visit_params(&mut |p, _| n += p.norm_sq());
            n
        };
        // Gradients are zero, so only the decay term acts.
        let mut sgd = Sgd::with_config(0.1, 0.0, 0.1);
        model.zero_grad();
        for _ in 0..10 {
            sgd.step(&mut model);
        }
        let norm_after: f32 = {
            let mut n = 0.0;
            model.visit_params(&mut |p, _| n += p.norm_sq());
            n
        };
        assert!(norm_after < norm_before);
    }

    #[test]
    fn step_lr_schedule_decays() {
        let sched = StepLr::new(0.1, 10, 0.5);
        assert!((sched.lr_at(0) - 0.1).abs() < 1e-7);
        assert!((sched.lr_at(9) - 0.1).abs() < 1e-7);
        assert!((sched.lr_at(10) - 0.05).abs() < 1e-7);
        assert!((sched.lr_at(25) - 0.025).abs() < 1e-7);
    }

    #[test]
    #[should_panic]
    fn rejects_non_positive_learning_rate() {
        Sgd::new(0.0);
    }
}
