//! The [`Layer`] trait every network building block implements.
//!
//! DSXplore-rs uses explicit per-layer forward/backward methods (a "tape of
//! layers" rather than a general autograd graph): each layer caches whatever
//! it needs during `forward` and consumes it in `backward`. This mirrors how
//! the paper's CUDA kernels are integrated into PyTorch as custom
//! autograd functions with hand-written backward passes.
//!
//! Training and inference are split into two entry points:
//!
//! * [`Layer::forward`] takes `&mut self` because training needs the
//!   activation caches the backward pass consumes (and, in batch norm,
//!   updates the running statistics);
//! * [`Layer::infer`] takes `&self`, touches no caches and uses evaluation
//!   behaviour everywhere (running statistics in batch norm). Because the
//!   trait requires `Send + Sync`, a built model is shareable behind an
//!   `Arc` and many threads can run `infer` on it concurrently — the
//!   foundation of the `dsx-serve` request-batching engine.

use dsx_tensor::Tensor;

/// A differentiable network building block with owned parameters.
pub trait Layer: Send + Sync {
    /// Human-readable layer name (used in model summaries).
    fn name(&self) -> String;

    /// Runs the layer on `input`. `train` selects training behaviour
    /// (e.g. batch statistics in batch norm). With `train = true` the layer
    /// caches whatever its backward pass needs; with `train = false` it must
    /// skip those caches (evaluation never calls [`Layer::backward`]).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Shared-state inference: numerically identical to
    /// `forward(input, false)` but takes `&self`, so a model behind an `Arc`
    /// can serve many threads at once. Implementations must not mutate any
    /// observable state (interior-mutable instrumentation counters are fine).
    fn infer(&self, input: &Tensor) -> Tensor;

    /// Propagates `grad_output` backwards, accumulating parameter gradients
    /// internally and returning the gradient with respect to the input.
    ///
    /// Must be called after `forward` with the corresponding input cached.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Calls `f(param, grad)` for every trainable parameter of the layer.
    /// The default implementation declares no parameters.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        let _ = f;
    }

    /// Sets all accumulated parameter gradients to zero.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_p, g| g.fill_zero());
    }

    /// Total number of trainable parameters.
    fn num_params(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p, _g| count += p.numel());
        count
    }

    /// Calls `f(name, tensor)` for every *persistent state* tensor of the
    /// layer: the trainable parameters **plus** non-parameter buffers such
    /// as batch norm's running statistics. Names are stable identifiers
    /// unique within one layer (`"weight"`, `"bias"`, `"running_mean"`,
    /// ...); container layers recurse and prefix each child's names with
    /// its position (`"3.weight"`). This is the read side of
    /// checkpointing; the default declares no state (reshaping and
    /// activation layers).
    fn state(&self, f: &mut dyn FnMut(&str, &Tensor)) {
        let _ = f;
    }

    /// Mutable counterpart of [`Layer::state`] with identical names and
    /// visit order — the write side of checkpoint loading. Loaders match
    /// records to tensors by name and overwrite contents in place, so
    /// implementations expose exactly the tensors `state` exposes.
    fn load_state(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        let _ = f;
    }

    /// Output shape for a given input shape (used for model summaries and
    /// FLOP counting without running data through the network).
    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize>;

    /// Multiply-accumulate operations of one forward pass for the given
    /// input shape. The default is zero (parameter-free reshaping layers).
    fn forward_macs(&self, input_shape: &[usize]) -> usize {
        let _ = input_shape;
        0
    }
}

/// Checks that [`Layer::infer`] matches `forward(train = false)` within
/// `tol` on a random input — shared helper for layer test-suites. The
/// forward pass runs first so a stale training cache can never leak into
/// the comparison.
#[doc(hidden)]
pub fn check_infer_parity<L: Layer>(layer: &mut L, input_shape: &[usize], tol: f32) {
    let input = Tensor::rand_uniform(input_shape, -1.0, 1.0, 4321);
    let eval = layer.forward(&input, false);
    let inferred = layer.infer(&input);
    assert!(
        dsx_tensor::allclose(&inferred, &eval, tol),
        "{}: infer diverges from forward(train=false) by {}",
        layer.name(),
        dsx_tensor::max_abs_diff(&inferred, &eval),
    );
}

/// Checks that a layer's numerical input gradient matches its analytic
/// backward pass on a random input — shared helper for layer test-suites.
#[doc(hidden)]
pub fn check_input_gradient<L: Layer>(layer: &mut L, input_shape: &[usize], tol: f32) {
    let input = Tensor::rand_uniform(input_shape, -1.0, 1.0, 1234);
    let out = layer.forward(&input, true);
    // Loss = sum of outputs, so dL/dout = 1.
    let grad_out = Tensor::ones(out.shape());
    let grad_in = layer.backward(&grad_out);

    let eps = 1e-2f32;
    let probes = [0usize, input.numel() / 3, input.numel() - 1];
    for &idx in probes.iter() {
        let mut plus = input.clone();
        plus.as_mut_slice()[idx] += eps;
        let mut minus = input.clone();
        minus.as_mut_slice()[idx] -= eps;
        let lp = layer.forward(&plus, true).sum();
        let lm = layer.forward(&minus, true).sum();
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = grad_in.as_slice()[idx];
        assert!(
            (numeric - analytic).abs() <= tol * (1.0 + numeric.abs().max(analytic.abs())),
            "{}: input gradient mismatch at {idx}: numeric {numeric} vs analytic {analytic}",
            layer.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal layer used to exercise the trait's default methods.
    struct Scale {
        factor: Tensor,
        grad: Tensor,
        cached: Option<Tensor>,
    }

    impl Scale {
        fn new(factor: f32) -> Self {
            Scale {
                factor: Tensor::from_vec(vec![factor], &[1]),
                grad: Tensor::zeros(&[1]),
                cached: None,
            }
        }
    }

    impl Layer for Scale {
        fn name(&self) -> String {
            "Scale".into()
        }

        fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
            self.cached = train.then(|| input.clone());
            input.scale(self.factor.as_slice()[0])
        }

        fn infer(&self, input: &Tensor) -> Tensor {
            input.scale(self.factor.as_slice()[0])
        }

        fn backward(&mut self, grad_output: &Tensor) -> Tensor {
            let input = self.cached.as_ref().expect("forward not called");
            self.grad.as_mut_slice()[0] += input
                .as_slice()
                .iter()
                .zip(grad_output.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>();
            grad_output.scale(self.factor.as_slice()[0])
        }

        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
            f(&mut self.factor, &mut self.grad);
        }

        fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
            input_shape.to_vec()
        }
    }

    #[test]
    fn default_num_params_and_zero_grad() {
        let mut s = Scale::new(2.0);
        assert_eq!(s.num_params(), 1);
        s.grad.as_mut_slice()[0] = 5.0;
        s.zero_grad();
        assert_eq!(s.grad.as_slice()[0], 0.0);
    }

    #[test]
    fn gradient_checker_accepts_a_correct_layer() {
        let mut s = Scale::new(1.5);
        check_input_gradient(&mut s, &[2, 3], 1e-2);
    }

    #[test]
    #[should_panic]
    fn gradient_checker_rejects_a_broken_layer() {
        struct Broken(Scale);
        impl Layer for Broken {
            fn name(&self) -> String {
                "Broken".into()
            }
            fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
                self.0.forward(input, train)
            }
            fn infer(&self, input: &Tensor) -> Tensor {
                self.0.infer(input)
            }
            fn backward(&mut self, grad_output: &Tensor) -> Tensor {
                // Wrong: ignores the scale factor.
                grad_output.scale(10.0)
            }
            fn output_shape(&self, s: &[usize]) -> Vec<usize> {
                s.to_vec()
            }
        }
        let mut b = Broken(Scale::new(1.5));
        check_input_gradient(&mut b, &[2, 3], 1e-2);
    }
}
