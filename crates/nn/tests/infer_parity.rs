//! Property test: `Layer::infer` ≡ `forward(train = false)` within
//! `TEST_TOLERANCE` for every layer type in the stack — the contract the
//! serving engine's shared-state inference path rests on.

use dsx_core::{BackendKind, SccConfig, SccImplementation};
use dsx_nn::{
    separable_block, BatchNorm2d, ChannelStage, Conv2d, Flatten, GlobalAvgPool, Layer, Linear,
    MaxPool2d, ReLU, SccConv2d, Sequential,
};
use dsx_nn::{AvgPool2d, ResidualBlock};
use dsx_tensor::{allclose, Tensor, TEST_TOLERANCE};
use proptest::prelude::*;

/// Channel count every grouped/SCC case divides evenly.
const CH: usize = 8;

/// The layer-type axis of the property: every `Layer` implementation in
/// `dsx-nn`, including containers.
const KINDS: [&str; 13] = [
    "relu",
    "batchnorm",
    "conv",
    "grouped-conv",
    "depthwise-conv",
    "pointwise-conv",
    "scc-naive",
    "scc-blocked",
    "scc-tiled",
    "maxpool",
    "avgpool",
    "gap-flatten-linear",
    "separable-residual",
];

/// Builds the layer under test plus a valid NCHW input shape for it.
fn build_case(kind: &str, batch: usize, hw: usize, seed: u64) -> (Box<dyn Layer>, Vec<usize>) {
    let shape = vec![batch, CH, hw, hw];
    match kind {
        "relu" => (Box::new(ReLU::new()), shape),
        "batchnorm" => {
            let mut bn = BatchNorm2d::new(CH);
            // Move the running statistics off their defaults so the eval
            // path has something non-trivial to reproduce.
            for i in 0..3 {
                bn.forward(&Tensor::randn(&[4, CH, hw, hw], seed + i), true);
            }
            (Box::new(bn), shape)
        }
        "conv" => (Box::new(Conv2d::new(CH, CH + 2, 3, 1, 1, seed)), shape),
        "grouped-conv" => (Box::new(Conv2d::grouped(CH, CH, 3, 2, 1, 2, seed)), shape),
        "depthwise-conv" => (Box::new(Conv2d::depthwise(CH, 3, 1, 1, seed)), shape),
        "pointwise-conv" => (Box::new(Conv2d::pointwise(CH, CH * 2, seed)), shape),
        "scc-naive" | "scc-blocked" | "scc-tiled" => {
            let backend = match kind {
                "scc-naive" => BackendKind::Naive,
                "scc-blocked" => BackendKind::Blocked,
                _ => BackendKind::Tiled,
            };
            let cfg = SccConfig::new(CH, CH * 2, 2, 0.5).unwrap();
            (
                Box::new(SccConv2d::new(cfg, seed).with_backend(backend)),
                shape,
            )
        }
        "maxpool" => (Box::new(MaxPool2d::new(2, 2)), shape),
        "avgpool" => (Box::new(AvgPool2d::new(2, 2)), shape),
        "gap-flatten-linear" => (
            Box::new(
                Sequential::new("head")
                    .push(GlobalAvgPool::new())
                    .push(Flatten::new())
                    .push(Linear::new(CH, 5, seed)),
            ),
            shape,
        ),
        "separable-residual" => {
            // A DW+SCC separable block inside a residual wrapper: exercises
            // Sequential, ResidualBlock, Conv2d, BatchNorm2d, ReLU and
            // SccConv2d chained together.
            let main = separable_block(
                CH,
                CH,
                1,
                ChannelStage::SlidingChannel {
                    cg: 2,
                    co: 0.5,
                    implementation: SccImplementation::Dsxplore,
                },
                seed,
            );
            let mut block = ResidualBlock::identity(main);
            // One training pass settles every batch norm's running stats.
            block.forward(&Tensor::randn(&[2, CH, hw, hw], seed + 7), true);
            (Box::new(block), shape)
        }
        other => panic!("unknown layer kind '{other}'"),
    }
}

/// Property-test case count: full natively, minimal under Miri or
/// `DSX_TEST_FAST` (sanitizer/interpreter runs need the coverage, not
/// the volume).
fn prop_cases(full: u32) -> u32 {
    if cfg!(miri) || std::env::var_os("DSX_TEST_FAST").is_some() {
        2
    } else {
        full
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases(36)))]

    /// For every layer type: `infer` equals `forward(train=false)` on the
    /// same input, and a training pass in between must not change that
    /// (stale caches must not leak into the inference path).
    #[test]
    fn prop_infer_matches_eval_forward(
        kind in prop::sample::select(KINDS.to_vec()),
        batch in 1usize..4,
        hw in prop::sample::select(vec![4usize, 6, 8]),
        seed in 0u64..1000,
    ) {
        let (mut layer, shape) = build_case(kind, batch, hw, seed);
        let input = Tensor::rand_uniform(&shape, -1.0, 1.0, seed + 42);
        let eval = layer.forward(&input, false);
        let inferred = layer.infer(&input);
        prop_assert!(
            allclose(&inferred, &eval, TEST_TOLERANCE),
            "{kind}: infer != forward(train=false) (batch {batch}, {hw}x{hw})"
        );
        // A training pass (with a different input) must leave `infer`
        // untouched — its caches belong to the training path only.
        layer.forward(&Tensor::rand_uniform(&shape, -1.0, 1.0, seed + 77), true);
        let after_train = layer.infer(&input);
        let eval_after = layer.forward(&input, false);
        prop_assert!(
            allclose(&after_train, &eval_after, TEST_TOLERANCE),
            "{kind}: infer diverges from eval forward after a training pass"
        );
    }
}
