//! Cross-backend parity property suite for the dense `Conv2d` layer.
//!
//! Mirrors `dsx-core`'s `backend_parity` suite on the dense side: every
//! backend (naive im2col GEMM, register-tiled GEMM, pool-scheduled GEMM,
//! sliding-window-sum) must match the direct scalar reference within
//! `TEST_TOLERANCE` — no tolerance widening — across kernel sizes, strides,
//! paddings, group counts, non-square spatial dims, and plane widths that
//! do not divide the GEMM vector width. Plus bit-determinism checks: the
//! two pool-scheduled paths (tiled GEMM, swsum FIR) must produce identical
//! bits at 1 and N pool threads.

use dsx_core::BackendKind;
use dsx_nn::conv::{conv2d_reference, Conv2d};
use dsx_nn::{conv2d_swsum, Layer};
use dsx_tensor::{allclose, Tensor, TEST_TOLERANCE};
use proptest::prelude::*;

#[allow(clippy::too_many_arguments)] // mirrors Conv2d::grouped's signature
fn conv_for(
    backend: BackendKind,
    cin: usize,
    cout: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    seed: u64,
) -> Conv2d {
    Conv2d::grouped(cin, cout, kernel, stride, pad, groups, seed).with_backend(backend)
}

/// Property-test case count: full natively, minimal under Miri or
/// `DSX_TEST_FAST` (sanitizer/interpreter runs need the coverage, not
/// the volume).
fn prop_cases(full: u32) -> u32 {
    if cfg!(miri) || std::env::var_os("DSX_TEST_FAST").is_some() {
        2
    } else {
        full
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases(48)))]

    /// Forward parity on train and eval paths: every backend == the direct
    /// scalar reference, TEST_TOLERANCE.
    #[test]
    fn prop_dense_forward_parity(
        groups in prop::sample::select(vec![1usize, 2, 4]),
        cin_mult in 1usize..3,
        cout_mult in 1usize..4,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        n in 1usize..3,
        h in 1usize..10,
        w in 1usize..10,
        seed in 0u64..1000,
    ) {
        let (cin, cout) = (groups * cin_mult, groups * cout_mult);
        // The output must be non-empty.
        if h + 2 * pad < kernel || w + 2 * pad < kernel {
            return Ok(()); // empty output plane
        }
        let input = Tensor::randn(&[n, cin, h, w], seed);
        let oracle = conv_for(BackendKind::Naive, cin, cout, kernel, stride, pad, groups, seed);
        let want = conv2d_reference(&input, oracle.weight(), oracle.bias(), stride, pad, groups);
        for backend in BackendKind::ALL {
            let mut conv = conv_for(backend, cin, cout, kernel, stride, pad, groups, seed);
            let train = conv.forward(&input, true);
            prop_assert!(
                allclose(&train, &want, TEST_TOLERANCE),
                "{backend} train forward != reference for k{kernel} s{stride} p{pad} g{groups} {h}x{w}"
            );
            let eval = conv.infer(&input);
            prop_assert!(
                allclose(&eval, &want, TEST_TOLERANCE),
                "{backend} infer != reference for k{kernel} s{stride} p{pad} g{groups} {h}x{w}"
            );
        }
    }

    /// Backward parity: grad_input and every parameter gradient agree with
    /// the naive backend across the same shape grid.
    #[test]
    fn prop_dense_backward_parity(
        groups in prop::sample::select(vec![1usize, 2]),
        cin_mult in 1usize..3,
        cout_mult in 1usize..3,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        h in 1usize..8,
        w in 1usize..8,
        seed in 0u64..1000,
    ) {
        let (cin, cout) = (groups * cin_mult, groups * cout_mult);
        if h + 2 * pad < kernel || w + 2 * pad < kernel {
            return Ok(()); // empty output plane
        }
        let input = Tensor::randn(&[1, cin, h, w], seed);
        let run = |backend: BackendKind| {
            let mut conv = conv_for(backend, cin, cout, kernel, stride, pad, groups, seed);
            let out = conv.forward(&input, true);
            let grad_input = conv.backward(&Tensor::randn(out.shape(), seed + 1));
            let mut grads = Vec::new();
            conv.visit_params(&mut |_, grad| grads.push(grad.clone()));
            (grad_input, grads)
        };
        let (naive_gi, naive_grads) = run(BackendKind::Naive);
        for backend in [BackendKind::Blocked, BackendKind::Tiled, BackendKind::Swsum] {
            let (gi, grads) = run(backend);
            prop_assert!(
                allclose(&gi, &naive_gi, TEST_TOLERANCE),
                "{backend} grad_input != naive for k{kernel} s{stride} p{pad} g{groups} {h}x{w}"
            );
            prop_assert_eq!(grads.len(), naive_grads.len());
            for (got, want) in grads.iter().zip(&naive_grads) {
                prop_assert!(
                    allclose(got, want, TEST_TOLERANCE),
                    "{backend} param grad != naive for k{kernel} s{stride} p{pad} g{groups} {h}x{w}"
                );
            }
        }
    }
}

/// Deterministic sweep over ragged plane widths straddling the GEMM vector
/// width (8 lanes) on both sides, for every backend.
#[test]
fn parity_grid_over_ragged_planes() {
    let spatial = [(1usize, 1usize), (1, 7), (2, 8), (3, 9), (5, 7), (4, 16)];
    for (kernel, stride, pad) in [(1usize, 1usize, 0usize), (3, 1, 1), (3, 2, 1), (2, 2, 0)] {
        for (h, w) in spatial {
            if h + 2 * pad < kernel || w + 2 * pad < kernel {
                continue;
            }
            let input = Tensor::randn(&[2, 4, h, w], 83);
            let oracle = conv_for(BackendKind::Naive, 4, 6, kernel, stride, pad, 2, 84);
            let want = conv2d_reference(&input, oracle.weight(), oracle.bias(), stride, pad, 2);
            for backend in BackendKind::ALL {
                let conv = conv_for(backend, 4, 6, kernel, stride, pad, 2, 84);
                let got = conv.infer(&input);
                assert!(
                    allclose(&got, &want, TEST_TOLERANCE),
                    "{backend} parity fails for k{kernel} s{stride} p{pad} {h}x{w}"
                );
            }
        }
    }
}

/// Same seed, 1 pool thread vs N pool threads: both pool-scheduled dense
/// paths — the tiled (pooled-GEMM) backend's train forward + backward and
/// the swsum FIR forward — must be bit-identical, not merely within
/// tolerance. 64×64 planes give the schedulers real strips to carve.
#[test]
fn pooled_dense_paths_are_bit_identical_across_thread_counts() {
    let input = Tensor::randn(&[2, 8, 64, 64], 95);
    let run_backend = |backend: BackendKind| {
        let mut conv = conv_for(backend, 8, 12, 3, 1, 1, 2, 96);
        let fwd = conv.forward(&input, true);
        let gi = conv.backward(&Tensor::randn(fwd.shape(), 97));
        let eval = conv.infer(&input);
        let mut grads = Vec::new();
        conv.visit_params(&mut |_, grad| grads.push(grad.clone()));
        (fwd, gi, eval, grads)
    };
    for backend in [BackendKind::Tiled, BackendKind::Swsum] {
        dsx_tensor::set_num_threads(1);
        let (fwd_1, gi_1, eval_1, grads_1) = run_backend(backend);
        dsx_tensor::set_num_threads(4);
        let (fwd_n, gi_n, eval_n, grads_n) = run_backend(backend);
        dsx_tensor::set_num_threads(0);
        assert_eq!(
            fwd_1.as_slice(),
            fwd_n.as_slice(),
            "{backend} train forward must be bit-identical at 1 vs 4 threads"
        );
        assert_eq!(
            eval_1.as_slice(),
            eval_n.as_slice(),
            "{backend} infer must be bit-identical at 1 vs 4 threads"
        );
        assert_eq!(
            gi_1.as_slice(),
            gi_n.as_slice(),
            "{backend} grad_input must be bit-identical at 1 vs 4 threads"
        );
        for (g1, gn) in grads_1.iter().zip(&grads_n) {
            assert_eq!(
                g1.as_slice(),
                gn.as_slice(),
                "{backend} param grads must be bit-identical at 1 vs 4 threads"
            );
        }
    }
}

/// The standalone swsum kernel is exercised directly (not through a layer)
/// on a stride-2 grouped shape — the generic per-tap path, not the fused
/// 3-tap fast path.
#[test]
fn standalone_swsum_kernel_matches_reference_on_strided_groups() {
    let conv = conv_for(BackendKind::Swsum, 6, 9, 3, 2, 1, 3, 99);
    let input = Tensor::randn(&[2, 6, 11, 9], 100);
    let got = conv2d_swsum(&input, conv.weight(), conv.bias(), 2, 1, 3);
    let want = conv2d_reference(&input, conv.weight(), conv.bias(), 2, 1, 3);
    assert!(allclose(&got, &want, TEST_TOLERANCE));
}
