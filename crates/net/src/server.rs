//! The TCP serving front-end: an acceptor thread plus a reader/writer
//! thread pair per connection, all feeding the one shared
//! [`ServeEngine`].
//!
//! Data path: a connection's **reader** parses request frames off the
//! socket and calls [`ServeHandle::submit_tagged`](dsx_serve::ServeHandle::submit_tagged),
//! which routes every engine outcome — served output, shape rejection,
//! batch failure — onto the connection's `done` channel keyed by request
//! id. The **writer** drains that channel and streams response/error
//! frames back, so replies leave in batch-completion order, not submission
//! order; the request id is what lets the client reassemble. Requests from
//! *all* connections meet in the engine's queue, which is where
//! cross-client batching (the whole point of the front-end) happens.
//!
//! Both threads share the buffered write half behind a mutex: the writer
//! streams engine outcomes, the reader injects protocol-level error frames
//! (malformed frame, bad version) without interleaving bytes mid-frame.
//!
//! Failure containment mirrors the engine's: a malformed frame is answered
//! with an error frame and the connection lives on (the length prefix kept
//! the stream framed); an untrustworthy length prefix closes only that
//! connection; a client that disconnects mid-request just stops receiving
//! — its in-flight work completes and the delivery attempt fails silently,
//! touching neither the worker pool nor other connections.

use crate::protocol::{self, ErrorCode, Frame, WireError};
use crossbeam::channel::{self, Receiver};
use dsx_nn::Layer;
use dsx_serve::{ServeConfig, ServeEngine, ServeError, ServeHandle, ServeSnapshot, TaggedResponse};
use dsx_tensor::Tensor;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the acceptor sleeps between polls of its non-blocking listener
/// (the price of interruptible `accept` on std-only sockets).
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Loads a fresh model when a client sends a reload frame. Returning `Err`
/// leaves the currently-served model untouched (the client gets an
/// `Internal` error frame with the message).
pub type ReloadFn = Arc<dyn Fn() -> Result<Arc<dyn Layer>, String> + Send + Sync>;

/// A live connection's handles, kept so shutdown can close the socket and
/// join both threads.
struct Connection {
    stream: TcpStream,
    reader: JoinHandle<()>,
    writer: JoinHandle<()>,
}

/// The running TCP front-end: owns the engine, the acceptor and every
/// connection thread.
pub struct NetServer {
    engine: ServeEngine,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    connections: Arc<Mutex<Vec<Connection>>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral test port), starts the
    /// batching engine over `model` with `config`, and begins accepting
    /// connections.
    pub fn start(addr: &str, model: Arc<dyn Layer>, config: ServeConfig) -> io::Result<NetServer> {
        Self::start_with_reload(addr, model, config, None)
    }

    /// Like [`NetServer::start`], but additionally wires a reload hook: a
    /// client's [`Frame::Reload`] runs `reload` and, on success, hot-swaps
    /// the returned model into the live engine —
    /// [`dsx_serve::ServeHandle::swap_model`] — without closing any
    /// connection or dropping any in-flight request.
    pub fn start_with_reload(
        addr: &str,
        model: Arc<dyn Layer>,
        config: ServeConfig,
        reload: Option<ReloadFn>,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let engine = ServeEngine::start(model, config);
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            let handle = engine.handle();
            std::thread::Builder::new()
                .name("dsx-net-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &handle, &stop, &connections, reload))?
        };
        Ok(NetServer {
            engine,
            local_addr,
            stop,
            acceptor,
            connections,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine's live serving counters.
    pub fn stats(&self) -> &dsx_serve::ServeStats {
        self.engine.stats()
    }

    /// A shared handle onto the live counters alone — safe for a background
    /// reader to hold across [`NetServer::shutdown`] (a full `ServeHandle`
    /// would keep the engine's queue open and stall the drain).
    pub fn stats_arc(&self) -> Arc<dsx_serve::ServeStats> {
        self.engine.stats_arc()
    }

    /// The batcher's current `max_wait` (moves under the adaptive
    /// controller).
    pub fn max_wait(&self) -> Duration {
        self.engine.max_wait()
    }

    /// Stops accepting, closes every connection, drains the engine and
    /// returns the final serving report.
    pub fn shutdown(self) -> ServeSnapshot {
        // ORDER: plain stop flag — the acceptor polls it between accepts;
        // nothing else is published through the store.
        self.stop.store(true, Ordering::Relaxed);
        // A panicked acceptor must not abort shutdown: the connection
        // registry and the engine drain below still have to run so every
        // in-flight request is answered.
        if self.acceptor.join().is_err() {
            eprintln!("dsx-net: the acceptor panicked; continuing shutdown");
        }
        // Closing the sockets unblocks the per-connection readers; their
        // engine handles drop as they exit, which is what lets the engine
        // drain its queue and retire the workers.
        //
        // Poisoning is recoverable: the registry is only ever pushed to,
        // reaped with `retain`, or taken wholesale — all single-step
        // operations that cannot leave it torn.
        let connections = std::mem::take(
            &mut *self
                .connections
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for connection in &connections {
            let _ = connection.stream.shutdown(std::net::Shutdown::Both);
        }
        for connection in connections {
            let _ = connection.reader.join();
            let _ = connection.writer.join();
        }
        self.engine.shutdown()
    }
}

/// The acceptor: poll the non-blocking listener, spawn a reader/writer
/// pair per accepted connection, and park their handles for shutdown.
fn accept_loop(
    listener: &TcpListener,
    handle: &ServeHandle,
    stop: &AtomicBool,
    connections: &Mutex<Vec<Connection>>,
    reload: Option<ReloadFn>,
) {
    let mut next_conn = 0usize;
    // ORDER: stop flag again — a late read costs one extra poll interval.
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Frames are small and latency-sensitive; Nagling them
                // would serialise the request/response ping-pong.
                let _ = stream.set_nodelay(true);
                let _ = stream.set_nonblocking(false);
                match spawn_connection(stream, handle.clone(), next_conn, reload.clone()) {
                    Ok(connection) => {
                        // Poison-recoverable for the same reason as in
                        // `shutdown`: push/retain/take only.
                        let mut connections = connections
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        // Reap dead connections here, where one is being
                        // added anyway: a registry that only grew would
                        // leak one duplicated fd (plus two JoinHandles)
                        // per closed connection until the fd limit killed
                        // `accept` on a long-running server.
                        connections.retain(|c| !c.reader.is_finished() || !c.writer.is_finished());
                        connections.push(connection);
                    }
                    Err(e) => eprintln!("dsx-net: failed to serve a connection: {e}"),
                }
                next_conn += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) => {
                eprintln!("dsx-net: accept failed: {e}");
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

/// Writes one frame and flushes, under the shared write-half lock.
fn send_frame(out: &Mutex<BufWriter<TcpStream>>, frame: &Frame) -> io::Result<()> {
    let mut out = out.lock().unwrap_or_else(|e| e.into_inner());
    protocol::write_frame(&mut *out, frame)?;
    out.flush()
}

/// Spawns the reader/writer pair for one accepted stream.
fn spawn_connection(
    stream: TcpStream,
    handle: ServeHandle,
    index: usize,
    reload: Option<ReloadFn>,
) -> io::Result<Connection> {
    let registry_stream = stream.try_clone()?;
    let out = Arc::new(Mutex::new(BufWriter::new(stream.try_clone()?)));
    let (done_tx, done_rx) = channel::unbounded::<TaggedResponse>();
    let writer = {
        let out = Arc::clone(&out);
        std::thread::Builder::new()
            .name(format!("dsx-net-writer-{index}"))
            .spawn(move || writer_loop(&out, &done_rx))?
    };
    let reader = std::thread::Builder::new()
        .name(format!("dsx-net-reader-{index}"))
        .spawn(move || {
            reader_loop(stream, &handle, &out, &done_tx, reload.as_ref());
            // Reader gone: drop its `done` sender. Once the engine's
            // in-flight clones drain too, the writer's recv disconnects and
            // it exits — after the last pending response is flushed.
            drop(done_tx);
        })?;
    Ok(Connection {
        stream: registry_stream,
        reader,
        writer,
    })
}

/// One connection's writer: stream engine outcomes back as frames until
/// every `done` sender is gone or the socket dies — then close the socket.
///
/// The close is correct in both exit cases: the channel only disconnects
/// once the reader exited *and* every in-flight engine response was
/// delivered (nothing more will ever flow), and a write error means the
/// client is gone — closing kicks a reader still blocked on that socket so
/// it stops submitting work nobody will read.
fn writer_loop(out: &Mutex<BufWriter<TcpStream>>, done_rx: &Receiver<TaggedResponse>) {
    drain_responses(out, done_rx);
    let out = out.lock().unwrap_or_else(|e| e.into_inner());
    let _ = out.get_ref().shutdown(std::net::Shutdown::Both);
}

/// The writer's drain loop, split out so the socket close above runs on
/// every exit path.
fn drain_responses(out: &Mutex<BufWriter<TcpStream>>, done_rx: &Receiver<TaggedResponse>) {
    while let Ok(response) = done_rx.recv() {
        let frame = match response.result {
            Ok(tensor) => Frame::Response {
                id: response.id,
                tensor,
            },
            Err(err) => Frame::Error {
                id: response.id,
                code: match &err {
                    ServeError::InvalidRequest(_) => ErrorCode::BadRequest,
                    ServeError::Shutdown => ErrorCode::Shutdown,
                },
                message: err.to_string(),
            },
        };
        if send_frame(out, &frame).is_err() {
            // The client vanished. Dropping the receiver (by returning)
            // makes the engine's remaining sends for this connection fail
            // silently — cancelled responses, healthy workers.
            return;
        }
    }
}

/// One connection's reader: parse frames, submit requests, answer protocol
/// errors in place, and decide whether a malformation is survivable.
fn reader_loop(
    stream: TcpStream,
    handle: &ServeHandle,
    out: &Mutex<BufWriter<TcpStream>>,
    done: &channel::Sender<TaggedResponse>,
    reload: Option<&ReloadFn>,
) {
    let mut input = BufReader::new(stream);
    loop {
        match protocol::read_frame(&mut input) {
            Ok(Frame::Request { id, tensor }) => handle.submit_tagged(id, tensor, done),
            Ok(Frame::Reload { id }) => {
                // Swap the model live; every outcome answers on this
                // connection without disturbing any other.
                let frame = match reload {
                    None => Frame::Error {
                        id,
                        code: ErrorCode::BadRequest,
                        message: "model reload is not enabled on this server".to_string(),
                    },
                    Some(load) => match load() {
                        Ok(model) => {
                            let generation = handle.swap_model(model);
                            Frame::Response {
                                id,
                                tensor: Tensor::from_vec(vec![generation as f32], &[1]),
                            }
                        }
                        // The old model keeps serving untouched.
                        Err(why) => Frame::Error {
                            id,
                            code: ErrorCode::Internal,
                            message: format!("model reload failed: {why}"),
                        },
                    },
                };
                if send_frame(out, &frame).is_err() {
                    return;
                }
            }
            Ok(Frame::Stats { id, .. }) => {
                // Answer with the process-wide metrics registry (pool, gemm,
                // net counters) merged with the serve tier's own stats.
                let mut snapshot = dsx_obs::snapshot();
                handle.stats().export_metrics(&mut snapshot);
                snapshot.sort();
                if send_frame(out, &Frame::Stats { id, snapshot }).is_err() {
                    return;
                }
            }
            Ok(unexpected) => {
                // Clients may only send requests; answer and keep going.
                let _ = send_frame(
                    out,
                    &Frame::Error {
                        id: unexpected.id(),
                        code: ErrorCode::Malformed,
                        message: "only request frames are accepted by the server".to_string(),
                    },
                );
            }
            Err(WireError::Closed) => return,
            Err(err @ (WireError::Malformed { .. } | WireError::BadVersion { .. })) => {
                // The length prefix held, so the stream is still framed:
                // answer with a typed protocol error — attributed to the
                // request id when the header yielded one (0 otherwise) —
                // and keep the connection.
                let code = match &err {
                    WireError::BadVersion { .. } => ErrorCode::UnsupportedVersion,
                    _ => ErrorCode::Malformed,
                };
                if send_frame(
                    out,
                    &Frame::Error {
                        id: err.frame_id(),
                        code,
                        message: err.to_string(),
                    },
                )
                .is_err()
                {
                    return;
                }
            }
            Err(err @ WireError::TooLarge(_)) => {
                // Framing can no longer be trusted: best-effort answer,
                // then close this connection (the server lives on).
                let _ = send_frame(
                    out,
                    &Frame::Error {
                        id: 0,
                        code: ErrorCode::FrameTooLarge,
                        message: err.to_string(),
                    },
                );
                return;
            }
            Err(WireError::Io(_)) => return, // the peer died mid-frame
        }
    }
}
