//! The TCP serving front-end: an acceptor thread plus a reader/writer
//! thread pair per connection, all feeding the one shared
//! [`ServeEngine`].
//!
//! Data path: a connection's **reader** parses request frames off the
//! socket and calls [`ServeHandle::submit_tagged_deadline`](dsx_serve::ServeHandle::submit_tagged_deadline),
//! which routes every engine outcome — served output, shape rejection,
//! deadline shed, batch failure — onto the connection's `done` channel
//! keyed by request id. The **writer** drains that channel and streams
//! response/error frames back, so replies leave in batch-completion order,
//! not submission order; the request id is what lets the client
//! reassemble. Requests from *all* connections meet in the engine's queue,
//! which is where cross-client batching (the whole point of the front-end)
//! happens.
//!
//! Both threads share the buffered write half behind a mutex: the writer
//! streams engine outcomes, the reader injects protocol-level error frames
//! (malformed frame, bad version) without interleaving bytes mid-frame.
//!
//! Failure containment mirrors the engine's: a malformed frame is answered
//! with an error frame and the connection lives on (the length prefix kept
//! the stream framed); an untrustworthy length prefix closes only that
//! connection; a client that disconnects mid-request just stops receiving
//! — its in-flight work completes and the delivery attempt fails silently,
//! touching neither the worker pool nor other connections.
//!
//! ## Connection hygiene ([`NetServerConfig`])
//!
//! * **Admission** — past `max_conns` live connections, a new accept is
//!   answered with one `ServerBusy` error frame and closed; the engine
//!   never sees it.
//! * **Idle reaping** — the acceptor's poll loop (not just its accept
//!   path) sweeps the registry: a connection with nothing in flight and no
//!   frame read or written for `idle_timeout` has its socket shut down,
//!   which unblocks and retires its thread pair. A connected-but-silent
//!   client can no longer pin a reader thread forever.
//! * **Per-connection in-flight cap** — past `max_inflight` unanswered
//!   requests, further requests on that connection are answered
//!   `ServerBusy` (the connection survives), so one hot pipeliner cannot
//!   monopolise the batcher's queue.
//! * **Write timeouts** — `SO_SNDTIMEO` on every connection socket: a
//!   client that stops reading while the server streams responses stalls
//!   only its own writer, which times out, closes that one socket and
//!   exits. Every other connection keeps flowing.

use crate::protocol::{self, ErrorCode, Frame, WireError};
use crossbeam::channel::{self, Receiver};
use dsx_nn::Layer;
use dsx_serve::{ServeConfig, ServeEngine, ServeError, ServeHandle, ServeSnapshot, TaggedResponse};
use dsx_tensor::Tensor;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the acceptor sleeps between polls of its non-blocking listener
/// (the price of interruptible `accept` on std-only sockets). The idle
/// sweep runs at the same cadence, so `idle_timeout` has ~10 ms
/// granularity.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Cached handles for the hygiene counters (exported in the DSXN `Stats`
/// frame alongside the serve-tier stats).
struct ServerCounters {
    accepted: &'static dsx_obs::Counter,
    rejected_busy: &'static dsx_obs::Counter,
    reaped_idle: &'static dsx_obs::Counter,
    rejected_inflight: &'static dsx_obs::Counter,
    write_timeouts: &'static dsx_obs::Counter,
}

fn counters() -> &'static ServerCounters {
    static HANDLES: OnceLock<ServerCounters> = OnceLock::new();
    HANDLES.get_or_init(|| ServerCounters {
        accepted: dsx_obs::counter("net.conn.accepted"),
        rejected_busy: dsx_obs::counter("net.conn.rejected_busy"),
        reaped_idle: dsx_obs::counter("net.conn.reaped_idle"),
        rejected_inflight: dsx_obs::counter("net.req.rejected_inflight"),
        write_timeouts: dsx_obs::counter("net.write_timeouts"),
    })
}

/// Loads a fresh model when a client sends a reload frame. Returning `Err`
/// leaves the currently-served model untouched (the client gets an
/// `Internal` error frame with the message).
pub type ReloadFn = Arc<dyn Fn() -> Result<Arc<dyn Layer>, String> + Send + Sync>;

/// Connection-hygiene knobs layered on top of the engine's [`ServeConfig`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// The batching engine's own configuration.
    pub serve: ServeConfig,
    /// Hard cap on live connections; a connection past it is answered with
    /// one `ServerBusy` error frame and closed. `None` = unlimited.
    pub max_conns: Option<usize>,
    /// Reap a connection after this long with nothing in flight and no
    /// frame traffic (~10 ms granularity). `None` = never reap.
    pub idle_timeout: Option<Duration>,
    /// Per-connection cap on unanswered requests; requests past it are
    /// answered `ServerBusy` without closing the connection. `None` =
    /// unlimited.
    pub max_inflight: Option<usize>,
    /// `SO_SNDTIMEO` on every connection socket, so a stalled reader kills
    /// only its own connection. `None` = block forever (not recommended).
    pub write_timeout: Option<Duration>,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            serve: ServeConfig::default(),
            max_conns: None,
            idle_timeout: None,
            max_inflight: None,
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl From<ServeConfig> for NetServerConfig {
    fn from(serve: ServeConfig) -> Self {
        NetServerConfig {
            serve,
            ..NetServerConfig::default()
        }
    }
}

/// The hygiene knobs the acceptor and connection threads consult (the
/// engine half of [`NetServerConfig`] is consumed at start).
#[derive(Clone, Copy)]
struct Hygiene {
    max_conns: Option<usize>,
    idle_timeout: Option<Duration>,
    max_inflight: Option<usize>,
    write_timeout: Option<Duration>,
}

/// A live connection's handles, kept so shutdown can close the socket and
/// join both threads, and so the acceptor's sweep can reap idle ones.
struct Connection {
    stream: TcpStream,
    reader: JoinHandle<()>,
    writer: JoinHandle<()>,
    /// Milliseconds since the server's epoch of the last frame read from
    /// or written to this connection.
    last_activity: Arc<AtomicU64>,
    /// Requests submitted to the engine whose responses have not been
    /// written back yet; the idle sweep never reaps a connection with work
    /// in flight.
    inflight: Arc<AtomicUsize>,
    /// Whether the sweep already shut this connection's socket down (so
    /// the reap counter moves once, not once per poll).
    reaped: AtomicBool,
}

/// The running TCP front-end: owns the engine, the acceptor and every
/// connection thread.
pub struct NetServer {
    engine: ServeEngine,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    connections: Arc<Mutex<Vec<Connection>>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral test port), starts the
    /// batching engine over `model` with `config`, and begins accepting
    /// connections. Hygiene limits sit at [`NetServerConfig::default`]
    /// (write timeouts only); use [`NetServer::start_net`] to set them.
    pub fn start(addr: &str, model: Arc<dyn Layer>, config: ServeConfig) -> io::Result<NetServer> {
        Self::start_net(addr, model, config.into(), None)
    }

    /// Like [`NetServer::start`], but additionally wires a reload hook: a
    /// client's [`Frame::Reload`] runs `reload` and, on success, hot-swaps
    /// the returned model into the live engine —
    /// [`dsx_serve::ServeHandle::swap_model`] — without closing any
    /// connection or dropping any in-flight request.
    pub fn start_with_reload(
        addr: &str,
        model: Arc<dyn Layer>,
        config: ServeConfig,
        reload: Option<ReloadFn>,
    ) -> io::Result<NetServer> {
        Self::start_net(addr, model, config.into(), reload)
    }

    /// The full-control constructor: engine configuration plus connection
    /// hygiene ([`NetServerConfig`]) plus the optional reload hook.
    pub fn start_net(
        addr: &str,
        model: Arc<dyn Layer>,
        config: NetServerConfig,
        reload: Option<ReloadFn>,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let hygiene = Hygiene {
            max_conns: config.max_conns,
            idle_timeout: config.idle_timeout,
            max_inflight: config.max_inflight,
            write_timeout: config.write_timeout,
        };
        let engine = ServeEngine::start(model, config.serve);
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            let handle = engine.handle();
            std::thread::Builder::new()
                .name("dsx-net-acceptor".to_string())
                .spawn(move || {
                    accept_loop(&listener, &handle, &stop, &connections, reload, hygiene)
                })?
        };
        Ok(NetServer {
            engine,
            local_addr,
            stop,
            acceptor,
            connections,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine's live serving counters.
    pub fn stats(&self) -> &dsx_serve::ServeStats {
        self.engine.stats()
    }

    /// A shared handle onto the live counters alone — safe for a background
    /// reader to hold across [`NetServer::shutdown`] (a full `ServeHandle`
    /// would keep the engine's queue open and stall the drain).
    pub fn stats_arc(&self) -> Arc<dsx_serve::ServeStats> {
        self.engine.stats_arc()
    }

    /// The batcher's current `max_wait` (moves under the adaptive
    /// controller).
    pub fn max_wait(&self) -> Duration {
        self.engine.max_wait()
    }

    /// Stops accepting, closes every connection, drains the engine and
    /// returns the final serving report.
    pub fn shutdown(self) -> ServeSnapshot {
        // ORDER: plain stop flag — the acceptor polls it between accepts;
        // nothing else is published through the store.
        self.stop.store(true, Ordering::Relaxed);
        // A panicked acceptor must not abort shutdown: the connection
        // registry and the engine drain below still have to run so every
        // in-flight request is answered.
        if self.acceptor.join().is_err() {
            eprintln!("dsx-net: the acceptor panicked; continuing shutdown");
        }
        // Closing the sockets unblocks the per-connection readers; their
        // engine handles drop as they exit, which is what lets the engine
        // drain its queue and retire the workers.
        //
        // Poisoning is recoverable: the registry is only ever pushed to,
        // reaped with `retain`, or taken wholesale — all single-step
        // operations that cannot leave it torn.
        let connections = std::mem::take(
            &mut *self
                .connections
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for connection in &connections {
            let _ = connection.stream.shutdown(std::net::Shutdown::Both);
        }
        for connection in connections {
            let _ = connection.reader.join();
            let _ = connection.writer.join();
        }
        self.engine.shutdown()
    }
}

/// Reaps finished threads from the registry and shuts down idle sockets;
/// returns the live connection count. Runs every acceptor poll — not just
/// on accept — so a silent server (no new connections) still retires dead
/// and idle ones. A registry that only grew would leak one duplicated fd
/// (plus two JoinHandles) per closed connection until the fd limit killed
/// `accept` on a long-running server.
fn sweep_connections(
    connections: &Mutex<Vec<Connection>>,
    idle_timeout: Option<Duration>,
    epoch: Instant,
) -> usize {
    // Poison-recoverable for the same reason as in `shutdown`:
    // push/retain/take only.
    let mut connections = connections
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    connections.retain(|c| !c.reader.is_finished() || !c.writer.is_finished());
    if let Some(idle) = idle_timeout {
        let now_ms = epoch.elapsed().as_millis() as u64;
        let idle_ms = idle.as_millis() as u64;
        for connection in connections.iter() {
            // ORDER: both loads are racy-tolerant gauges — a stale read
            // only postpones the reap by one poll; nothing is guarded.
            if connection.inflight.load(Ordering::Relaxed) > 0 {
                continue;
            }
            let last = connection.last_activity.load(Ordering::Relaxed); // ORDER: see above
            if now_ms.saturating_sub(last) >= idle_ms {
                // Shutting the socket unblocks the reader, which exits and
                // closes the pair down; the next sweep's retain drops the
                // registry entry.
                // ORDER: the swap is just a once-guard for the counter; the
                // shutdown call itself is idempotent.
                if !connection.reaped.swap(true, Ordering::Relaxed) {
                    counters().reaped_idle.inc();
                    let _ = connection.stream.shutdown(std::net::Shutdown::Both);
                }
            }
        }
    }
    connections.len()
}

/// The acceptor: poll the non-blocking listener, sweep the registry, apply
/// the connection-limit admission gate, and spawn a reader/writer pair per
/// admitted connection.
fn accept_loop(
    listener: &TcpListener,
    handle: &ServeHandle,
    stop: &AtomicBool,
    connections: &Mutex<Vec<Connection>>,
    reload: Option<ReloadFn>,
    hygiene: Hygiene,
) {
    let epoch = Instant::now();
    let mut next_conn = 0usize;
    // ORDER: stop flag again — a late read costs one extra poll interval.
    while !stop.load(Ordering::Relaxed) {
        let live = sweep_connections(connections, hygiene.idle_timeout, epoch);
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Frames are small and latency-sensitive; Nagling them
                // would serialise the request/response ping-pong.
                let _ = stream.set_nodelay(true);
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_write_timeout(hygiene.write_timeout);
                if hygiene.max_conns.is_some_and(|cap| live >= cap) {
                    // Over the connection limit: one typed rejection, then
                    // close. The engine never sees this connection.
                    counters().rejected_busy.inc();
                    let mut out = BufWriter::new(stream);
                    let _ = protocol::write_frame(
                        &mut out,
                        &Frame::Error {
                            id: 0,
                            code: ErrorCode::ServerBusy,
                            message: format!("connection limit reached ({live} live connections)"),
                        },
                    );
                    let _ = out.flush();
                    continue;
                }
                match spawn_connection(
                    stream,
                    handle.clone(),
                    next_conn,
                    reload.clone(),
                    hygiene,
                    epoch,
                ) {
                    Ok(connection) => {
                        counters().accepted.inc();
                        connections
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(connection);
                    }
                    Err(e) => eprintln!("dsx-net: failed to serve a connection: {e}"),
                }
                next_conn += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) => {
                eprintln!("dsx-net: accept failed: {e}");
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

/// Writes one frame and flushes, under the shared write-half lock.
fn send_frame(out: &Mutex<BufWriter<TcpStream>>, frame: &Frame) -> io::Result<()> {
    let mut out = out.lock().unwrap_or_else(|e| e.into_inner());
    protocol::write_frame(&mut *out, frame)?;
    out.flush()
}

/// Spawns the reader/writer pair for one accepted stream.
fn spawn_connection(
    stream: TcpStream,
    handle: ServeHandle,
    index: usize,
    reload: Option<ReloadFn>,
    hygiene: Hygiene,
    epoch: Instant,
) -> io::Result<Connection> {
    let registry_stream = stream.try_clone()?;
    let out = Arc::new(Mutex::new(BufWriter::new(stream.try_clone()?)));
    let (done_tx, done_rx) = channel::unbounded::<TaggedResponse>();
    let last_activity = Arc::new(AtomicU64::new(epoch.elapsed().as_millis() as u64));
    let inflight = Arc::new(AtomicUsize::new(0));
    let writer = {
        let out = Arc::clone(&out);
        let inflight = Arc::clone(&inflight);
        let last_activity = Arc::clone(&last_activity);
        std::thread::Builder::new()
            .name(format!("dsx-net-writer-{index}"))
            .spawn(move || writer_loop(&out, &done_rx, &inflight, &last_activity, epoch))?
    };
    let reader = {
        let last_activity = Arc::clone(&last_activity);
        let inflight = Arc::clone(&inflight);
        std::thread::Builder::new()
            .name(format!("dsx-net-reader-{index}"))
            .spawn(move || {
                reader_loop(ReaderCtx {
                    stream,
                    handle: &handle,
                    out: &out,
                    done: &done_tx,
                    reload: reload.as_ref(),
                    last_activity: &last_activity,
                    inflight: &inflight,
                    max_inflight: hygiene.max_inflight,
                    epoch,
                });
                // Reader gone: drop its `done` sender. Once the engine's
                // in-flight clones drain too, the writer's recv disconnects
                // and it exits — after the last pending response is
                // flushed.
                drop(done_tx);
            })?
    };
    Ok(Connection {
        stream: registry_stream,
        reader,
        writer,
        last_activity,
        inflight,
        reaped: AtomicBool::new(false),
    })
}

/// Stamps the connection's activity clock (ms since the server's epoch).
fn touch(last_activity: &AtomicU64, epoch: Instant) {
    // ORDER: a monotone-ish gauge read only by the idle sweep; staleness
    // or a torn update merely shifts the reap point by milliseconds.
    last_activity.store(epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
}

/// One connection's writer: stream engine outcomes back as frames until
/// every `done` sender is gone or the socket dies — then close the socket.
///
/// The close is correct in both exit cases: the channel only disconnects
/// once the reader exited *and* every in-flight engine response was
/// delivered (nothing more will ever flow), and a write error means the
/// client is gone (or — with `SO_SNDTIMEO` — stopped reading long enough
/// to time the write out); closing kicks a reader still blocked on that
/// socket so it stops submitting work nobody will read.
fn writer_loop(
    out: &Mutex<BufWriter<TcpStream>>,
    done_rx: &Receiver<TaggedResponse>,
    inflight: &AtomicUsize,
    last_activity: &AtomicU64,
    epoch: Instant,
) {
    drain_responses(out, done_rx, inflight, last_activity, epoch);
    let out = out.lock().unwrap_or_else(|e| e.into_inner());
    let _ = out.get_ref().shutdown(std::net::Shutdown::Both);
}

/// The writer's drain loop, split out so the socket close above runs on
/// every exit path.
fn drain_responses(
    out: &Mutex<BufWriter<TcpStream>>,
    done_rx: &Receiver<TaggedResponse>,
    inflight: &AtomicUsize,
    last_activity: &AtomicU64,
    epoch: Instant,
) {
    while let Ok(response) = done_rx.recv() {
        let frame = match response.result {
            Ok(tensor) => Frame::Response {
                id: response.id,
                tensor,
            },
            Err(err) => Frame::Error {
                id: response.id,
                code: match &err {
                    ServeError::InvalidRequest(_) => ErrorCode::BadRequest,
                    ServeError::Shutdown => ErrorCode::Shutdown,
                    ServeError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
                },
                message: err.to_string(),
            },
        };
        let sent = send_frame(out, &frame);
        // The request is answered (or undeliverable) either way: it no
        // longer counts against the connection's in-flight cap.
        // ORDER: racy-tolerant gauge — the reader's admission check
        // tolerates off-by-one staleness.
        inflight.fetch_sub(1, Ordering::Relaxed);
        match sent {
            Ok(()) => touch(last_activity, epoch),
            Err(e) => {
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) {
                    // A stalled reader, not a vanished one: the write-side
                    // timeout fired. Count it, then fall through to the
                    // same containment — close only this connection.
                    counters().write_timeouts.inc();
                }
                // The client vanished (or stalled past the timeout).
                // Dropping the receiver (by returning) makes the engine's
                // remaining sends for this connection fail silently —
                // cancelled responses, healthy workers.
                return;
            }
        }
    }
}

/// Everything one connection's reader needs (bundled so the spawn above
/// stays readable).
struct ReaderCtx<'a> {
    stream: TcpStream,
    handle: &'a ServeHandle,
    out: &'a Mutex<BufWriter<TcpStream>>,
    done: &'a channel::Sender<TaggedResponse>,
    reload: Option<&'a ReloadFn>,
    last_activity: &'a AtomicU64,
    inflight: &'a AtomicUsize,
    max_inflight: Option<usize>,
    epoch: Instant,
}

/// One connection's reader: parse frames, submit requests (under the
/// in-flight cap), answer protocol errors in place, and decide whether a
/// malformation is survivable.
fn reader_loop(ctx: ReaderCtx<'_>) {
    let ReaderCtx {
        stream,
        handle,
        out,
        done,
        reload,
        last_activity,
        inflight,
        max_inflight,
        epoch,
    } = ctx;
    let mut input = BufReader::new(stream);
    loop {
        match protocol::read_frame(&mut input) {
            Ok(Frame::Request {
                id,
                deadline_us,
                tensor,
            }) => {
                touch(last_activity, epoch);
                // The admission gate reads a racy-tolerant gauge — the
                // writer decrements concurrently, so the cap is accurate
                // to ±1; that slack is fine for a fairness limit.
                let over_cap =
                    max_inflight.is_some_and(|cap| inflight.load(Ordering::Relaxed) >= cap); // ORDER: racy-tolerant gauge (see above)
                if over_cap {
                    counters().rejected_inflight.inc();
                    if send_frame(
                        out,
                        &Frame::Error {
                            id,
                            code: ErrorCode::ServerBusy,
                            message: format!(
                                "in-flight request cap reached on this connection \
                                 (max {} unanswered)",
                                max_inflight.unwrap_or(0)
                            ),
                        },
                    )
                    .is_err()
                    {
                        return;
                    }
                    continue;
                }
                // Counted before submission; the writer decrements as it
                // answers. Validation rejects flow through `done` too, so
                // the pairing is exact.
                // ORDER: racy-tolerant gauge (see admission check above).
                inflight.fetch_add(1, Ordering::Relaxed);
                let deadline = (deadline_us > 0).then(|| Duration::from_micros(deadline_us));
                handle.submit_tagged_deadline(id, tensor, deadline, done);
            }
            Ok(Frame::Reload { id }) => {
                touch(last_activity, epoch);
                // Swap the model live; every outcome answers on this
                // connection without disturbing any other.
                let frame = match reload {
                    None => Frame::Error {
                        id,
                        code: ErrorCode::BadRequest,
                        message: "model reload is not enabled on this server".to_string(),
                    },
                    Some(load) => match load() {
                        Ok(model) => {
                            let generation = handle.swap_model(model);
                            Frame::Response {
                                id,
                                tensor: Tensor::from_vec(vec![generation as f32], &[1]),
                            }
                        }
                        // The old model keeps serving untouched.
                        Err(why) => Frame::Error {
                            id,
                            code: ErrorCode::Internal,
                            message: format!("model reload failed: {why}"),
                        },
                    },
                };
                if send_frame(out, &frame).is_err() {
                    return;
                }
            }
            Ok(Frame::Stats { id, .. }) => {
                touch(last_activity, epoch);
                // Answer with the process-wide metrics registry (pool, gemm,
                // net counters) merged with the serve tier's own stats.
                let mut snapshot = dsx_obs::snapshot();
                handle.stats().export_metrics(&mut snapshot);
                snapshot.sort();
                if send_frame(out, &Frame::Stats { id, snapshot }).is_err() {
                    return;
                }
            }
            Ok(unexpected) => {
                touch(last_activity, epoch);
                // Clients may only send requests; answer and keep going.
                let _ = send_frame(
                    out,
                    &Frame::Error {
                        id: unexpected.id(),
                        code: ErrorCode::Malformed,
                        message: "only request frames are accepted by the server".to_string(),
                    },
                );
            }
            Err(WireError::Closed) => return,
            Err(err @ (WireError::Malformed { .. } | WireError::BadVersion { .. })) => {
                touch(last_activity, epoch);
                // The length prefix held, so the stream is still framed:
                // answer with a typed protocol error — attributed to the
                // request id when the header yielded one (0 otherwise) —
                // and keep the connection.
                let code = match &err {
                    WireError::BadVersion { .. } => ErrorCode::UnsupportedVersion,
                    _ => ErrorCode::Malformed,
                };
                if send_frame(
                    out,
                    &Frame::Error {
                        id: err.frame_id(),
                        code,
                        message: err.to_string(),
                    },
                )
                .is_err()
                {
                    return;
                }
            }
            Err(err @ WireError::TooLarge(_)) => {
                // Framing can no longer be trusted: best-effort answer,
                // then close this connection (the server lives on).
                let _ = send_frame(
                    out,
                    &Frame::Error {
                        id: 0,
                        code: ErrorCode::FrameTooLarge,
                        message: err.to_string(),
                    },
                );
                return;
            }
            Err(WireError::Io(_)) => return, // the peer died mid-frame
        }
    }
}
