//! # dsx-net
//!
//! A TCP wire-protocol front-end for the `dsx-serve` micro-batching
//! engine: the piece that makes the whole serving stack exercisable from
//! outside the process.
//!
//! * [`protocol`] — the length-prefixed binary frame format (`len | magic
//!   "DSXN" | version | kind | request id | payload`), tensor payloads via
//!   `dsx_tensor::wire`, and typed error frames;
//! * [`server`] — [`NetServer`]: an acceptor plus a reader/writer thread
//!   pair per connection, submitting into the shared engine through
//!   `ServeHandle::submit_tagged` and streaming responses back in
//!   batch-completion order (out-of-order by request id);
//! * [`client`] — [`NetClient`]: blocking round trips or pipelined tagged
//!   requests over one connection;
//! * [`netload`] — the network load generator behind `dsx-serve
//!   --connect`, with client-observed latency percentiles.
//!
//! The `dsx-serve` binary lives in this crate (it needs the network modes,
//! and `dsx-net` depends on `dsx-serve`'s library): without flags it runs
//! the in-process load generator as before; `--listen ADDR` serves the
//! engine over TCP; `--connect ADDR` drives a remote server.
//!
//! ## Example
//!
//! ```
//! use dsx_net::{NetClient, NetServer};
//! use dsx_nn::{GlobalAvgPool, Layer, Linear, Sequential};
//! use dsx_serve::ServeConfig;
//! use dsx_tensor::Tensor;
//! use std::sync::Arc;
//!
//! let model: Arc<dyn Layer> = Arc::new(
//!     Sequential::new("m").push(GlobalAvgPool::new()).push(Linear::new(2, 3, 1)),
//! );
//! let server = NetServer::start("127.0.0.1:0", model, ServeConfig::default()).unwrap();
//! let mut client = NetClient::connect(server.local_addr()).unwrap();
//! let logits = client.infer(&Tensor::randn(&[1, 2, 4, 4], 7)).unwrap();
//! assert_eq!(logits.shape(), &[1, 3]);
//! drop(client);
//! let report = server.shutdown();
//! assert_eq!(report.requests, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod netload;
pub mod protocol;
pub mod server;

pub use client::{ClientConfig, NetClient, NetError, Reply, RetryPolicy};
pub use netload::{run_net_load, NetLoadConfig, NetLoadReport};
pub use protocol::{ErrorCode, Frame, WireError, MAGIC, MAX_FRAME_LEN, VERSION};
pub use server::{NetServer, NetServerConfig, ReloadFn};
