//! The `dsx-net` wire protocol: length-prefixed binary frames carrying
//! tensors (requests/responses) or typed errors, multiplexed by request id.
//!
//! ```text
//!  0        4        8    10   11           19
//! +--------+--------+----+----+------------+----------------------------+
//! | len    | magic  | ver|kind| request id | payload                    |
//! | u32 LE | "DSXN" | u16| u8 | u64 LE     | (tensor or error, below)   |
//! +--------+--------+----+----+------------+----------------------------+
//!
//! request payload (kind 1):
//!   deadline_us: u64 LE | rank: u8 | dims[rank]: u32 LE | data[numel]: f32 LE
//!   (deadline_us is the serving budget from frame receipt; 0 = none)
//! response payload (kind 2):
//!   rank: u8 | dims[rank]: u32 LE | data[numel]: f32 LE
//! error payload (kind 3):
//!   code: u16 LE | msg_len: u32 LE | message: utf-8 bytes
//! stats payload (kind 5):
//!   count: u32 LE | (name_len: u16 LE | name: utf-8 | value: u64 LE)*
//!   (the dsx-obs metrics snapshot codec; a stats *request* carries an
//!   empty snapshot, count = 0)
//! ```
//!
//! `len` counts the bytes *after* the length field (magic onward). The
//! request id is chosen by the client and echoed verbatim in the response
//! or error frame, so responses may stream back in any order — the engine
//! completes batches as they fill, not as connections sent them.
//!
//! Decoding distinguishes recoverable malformations (the length prefix was
//! honest, so the stream is still framed: bad magic, bad version, unknown
//! kind, garbled payload — answer with an error frame and keep the
//! connection) from unrecoverable ones (an absurd length prefix means the
//! framing itself cannot be trusted: answer and close).

use dsx_obs::MetricsSnapshot;
use dsx_tensor::Tensor;
use std::io::{self, Read, Write};
use std::sync::OnceLock;

/// Cached handles for the wire-level metrics so the per-frame cost is a
/// pair of relaxed increments, not registry lookups.
struct NetCounters {
    frames_read: &'static dsx_obs::Counter,
    frames_written: &'static dsx_obs::Counter,
    bytes_read: &'static dsx_obs::Counter,
    bytes_written: &'static dsx_obs::Counter,
}

fn counters() -> &'static NetCounters {
    static HANDLES: OnceLock<NetCounters> = OnceLock::new();
    HANDLES.get_or_init(|| NetCounters {
        frames_read: dsx_obs::counter("net.frames_read"),
        frames_written: dsx_obs::counter("net.frames_written"),
        bytes_read: dsx_obs::counter("net.bytes_read"),
        bytes_written: dsx_obs::counter("net.bytes_written"),
    })
}

/// The four bytes every frame body starts with: `b"DSXN"` on the wire.
pub const MAGIC: u32 = u32::from_le_bytes(*b"DSXN");

/// Protocol version this build speaks. Version 2 added the `deadline_us`
/// field at the start of the request payload (and the `DeadlineExceeded` /
/// `ServerBusy` error codes it is answered with).
pub const VERSION: u16 = 2;

/// Upper bound on a frame body (`len` field): 64 MiB. A batch-256 CIFAR
/// request is ~3 MB, so this is generous headroom, not a real workload
/// limit.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Frame kind tags on the wire.
const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;
const KIND_ERROR: u8 = 3;
const KIND_RELOAD: u8 = 4;
const KIND_STATS: u8 = 5;

/// Bytes of a frame body before the payload: magic + version + kind + id.
const HEADER_LEN: usize = 4 + 2 + 1 + 8;

/// Typed error codes carried by error frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame could not be parsed (bad magic, unknown kind, garbled
    /// payload). The connection survives — the length prefix kept framing.
    Malformed,
    /// The length prefix exceeded [`MAX_FRAME_LEN`]; the server closes the
    /// connection after sending this, since framing is no longer trusted.
    FrameTooLarge,
    /// The frame declared a protocol version this server does not speak.
    UnsupportedVersion,
    /// The request was well-formed but rejected by the engine (wrong tensor
    /// shape for the served model).
    BadRequest,
    /// The serving engine is shutting down (or the batch carrying the
    /// request failed); retry on a new connection.
    Shutdown,
    /// Any other server-side failure.
    Internal,
    /// The request's `deadline_us` budget expired before a worker could
    /// batch it; it was shed unserved. Retrying is pointless within the
    /// same budget — the client should raise the deadline or back off.
    DeadlineExceeded,
    /// The server refused admission: either the connection limit
    /// (`--max-conns`) was reached at accept time (the connection closes
    /// after this frame), or this connection's in-flight request cap was
    /// hit (the connection survives; retry after a response drains).
    ServerBusy,
}

impl ErrorCode {
    /// The on-wire `u16` for this code.
    pub fn as_u16(self) -> u16 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::FrameTooLarge => 2,
            ErrorCode::UnsupportedVersion => 3,
            ErrorCode::BadRequest => 4,
            ErrorCode::Shutdown => 5,
            ErrorCode::Internal => 6,
            ErrorCode::DeadlineExceeded => 7,
            ErrorCode::ServerBusy => 8,
        }
    }

    /// Parses an on-wire code; unknown values collapse to
    /// [`ErrorCode::Internal`] so old clients survive new servers.
    pub fn from_u16(raw: u16) -> Self {
        match raw {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::FrameTooLarge,
            3 => ErrorCode::UnsupportedVersion,
            4 => ErrorCode::BadRequest,
            5 => ErrorCode::Shutdown,
            7 => ErrorCode::DeadlineExceeded,
            8 => ErrorCode::ServerBusy,
            _ => ErrorCode::Internal,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed frame",
            ErrorCode::FrameTooLarge => "frame too large",
            ErrorCode::UnsupportedVersion => "unsupported protocol version",
            ErrorCode::BadRequest => "bad request",
            ErrorCode::Shutdown => "server shutting down",
            ErrorCode::Internal => "internal server error",
            ErrorCode::DeadlineExceeded => "request deadline exceeded",
            ErrorCode::ServerBusy => "server busy",
        };
        write!(f, "{name} (code {})", self.as_u16())
    }
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A client's inference request: `id` is echoed in the reply.
    Request {
        /// Client-chosen id multiplexing this connection.
        id: u64,
        /// Serving budget in microseconds, measured from the instant the
        /// server reads the frame; `0` means no deadline. A request still
        /// queued when the budget runs out is shed before batch assembly
        /// and answered with [`ErrorCode::DeadlineExceeded`].
        deadline_us: u64,
        /// The input tensor (NCHW for the serving engine).
        tensor: Tensor,
    },
    /// The served output for request `id`.
    Response {
        /// The id of the request this answers.
        id: u64,
        /// The output tensor.
        tensor: Tensor,
    },
    /// A typed failure. `id` is the offending request's id, or 0 when the
    /// failure was not attributable to one (e.g. an unparseable frame).
    Error {
        /// The id of the request this answers (0 if unattributable).
        id: u64,
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Asks the server to reload its model from wherever it was configured
    /// to load one (`dsx-serve --model PATH`) and hot-swap it in — live,
    /// without closing any connection. Empty payload. The server answers
    /// with a [`Frame::Response`] carrying a 1-element tensor holding the
    /// new swap generation, or a [`Frame::Error`] (`BadRequest` when the
    /// server has no model path to reload from, `Internal` when loading
    /// failed — the old model keeps serving in that case).
    Reload {
        /// Client-chosen id echoed in the reply.
        id: u64,
    },
    /// A metrics exchange. A client sends a `Stats` frame carrying an
    /// *empty* snapshot to ask for one; the server replies with a `Stats`
    /// frame (same id) whose snapshot holds its current counters, gauges
    /// and histogram summaries (`dsx_obs::snapshot()` merged with the
    /// serve-tier stats).
    Stats {
        /// Client-chosen id echoed in the reply.
        id: u64,
        /// Empty in requests; the server's metrics in replies.
        snapshot: MetricsSnapshot,
    },
}

impl Frame {
    /// The request id this frame carries.
    pub fn id(&self) -> u64 {
        match self {
            Frame::Request { id, .. }
            | Frame::Response { id, .. }
            | Frame::Error { id, .. }
            | Frame::Reload { id }
            | Frame::Stats { id, .. } => *id,
        }
    }
}

/// Why reading a frame failed.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (including EOF mid-frame).
    Io(io::Error),
    /// The connection closed cleanly at a frame boundary.
    Closed,
    /// The frame body did not parse; the stream is still framed (the
    /// declared length was consumed), so the connection is recoverable.
    /// `id` is the request id parsed from the frame header — 0 when the
    /// failure struck before an id could be trusted — so the peer can
    /// attribute the resulting error frame to its request.
    Malformed {
        /// The offending frame's request id (0 if unattributable).
        id: u64,
        /// What failed to parse.
        why: String,
    },
    /// The frame declared an unsupported version; recoverable like
    /// [`WireError::Malformed`].
    BadVersion {
        /// The offending frame's request id.
        id: u64,
        /// The version the peer claimed to speak.
        version: u16,
    },
    /// The length prefix exceeded [`MAX_FRAME_LEN`]; the stream can no
    /// longer be trusted and the connection should close.
    TooLarge(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Closed => f.write_str("connection closed"),
            WireError::Malformed { why, .. } => write!(f, "malformed frame: {why}"),
            WireError::BadVersion { version, .. } => {
                write!(
                    f,
                    "unsupported protocol version {version} (this build speaks {VERSION})"
                )
            }
            WireError::TooLarge(len) => {
                write!(
                    f,
                    "frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// Whether the connection's framing survived this error (the peer can
    /// be answered with an error frame and kept).
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            WireError::Malformed { .. } | WireError::BadVersion { .. }
        )
    }

    /// The request id the failing frame carried, when one was parsed (0
    /// otherwise).
    pub fn frame_id(&self) -> u64 {
        match self {
            WireError::Malformed { id, .. } | WireError::BadVersion { id, .. } => *id,
            _ => 0,
        }
    }
}

/// Serialises `frame` into its on-wire bytes (length prefix included).
///
/// The payload length is computable up front for every frame kind, so the
/// whole frame is built in one buffer — no assemble-then-prepend copy,
/// which matters at multi-megabyte tensor payloads.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    // Snapshots are encoded once up front: their wire length is not
    // computable without walking the entries anyway.
    let stats_payload = match frame {
        Frame::Stats { snapshot, .. } => Some(snapshot.encode()),
        _ => None,
    };
    let (kind, id, payload_len) = match frame {
        Frame::Request { id, tensor, .. } => (KIND_REQUEST, *id, 8 + tensor.wire_len()),
        Frame::Response { id, tensor } => (KIND_RESPONSE, *id, tensor.wire_len()),
        Frame::Error { id, message, .. } => (KIND_ERROR, *id, 6 + message.len()),
        Frame::Reload { id } => (KIND_RELOAD, *id, 0),
        // stats_payload is Some for Stats frames by construction above;
        // map_or keeps this panic-free all the same.
        Frame::Stats { id, .. } => (
            KIND_STATS,
            *id,
            stats_payload.as_deref().map_or(0, |p| p.len()),
        ),
    };
    let body_len = HEADER_LEN + payload_len;
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&id.to_le_bytes());
    match frame {
        Frame::Request {
            deadline_us,
            tensor,
            ..
        } => {
            out.extend_from_slice(&deadline_us.to_le_bytes());
            tensor.encode_wire(&mut out);
        }
        Frame::Response { tensor, .. } => {
            tensor.encode_wire(&mut out);
        }
        Frame::Error { code, message, .. } => {
            out.extend_from_slice(&code.as_u16().to_le_bytes());
            let msg = message.as_bytes();
            out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
            out.extend_from_slice(msg);
        }
        Frame::Reload { .. } => {}
        Frame::Stats { .. } => {
            if let Some(payload) = &stats_payload {
                out.extend_from_slice(payload);
            }
        }
    }
    debug_assert_eq!(out.len(), 4 + body_len, "length prefix must be exact");
    out
}

/// Writes `frame` to `w` (no flush — callers batch flushes per drain).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    let bytes = encode_frame(frame);
    let _span = dsx_obs::span_arg("net", "net.write", "bytes", bytes.len() as u64);
    w.write_all(&bytes)?;
    let c = counters();
    c.frames_written.inc();
    c.bytes_written.add(bytes.len() as u64);
    Ok(())
}

/// Reads one frame from `r`.
///
/// Returns [`WireError::Closed`] on EOF at a frame boundary (the peer hung
/// up cleanly) and [`WireError::Io`] on EOF mid-frame (the peer died).
/// Recoverable parse failures consume the whole declared frame, so the
/// caller may keep reading subsequent frames off the same stream.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, WireError> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(WireError::Closed),
        Err(e) => return Err(WireError::Io(e)),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::TooLarge(len));
    }
    if len < HEADER_LEN {
        // Still consume the declared bytes so framing survives.
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        return Err(WireError::Malformed {
            id: 0,
            why: format!("frame body of {len} bytes is shorter than the {HEADER_LEN}-byte header"),
        });
    }
    // The span opens only once the length prefix has arrived, so it times
    // the body read + parse, not the idle wait for the peer to speak.
    let _span = dsx_obs::span_arg("net", "net.read", "bytes", len as u64);
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let c = counters();
    c.frames_read.inc();
    c.bytes_read.add(4 + len as u64);
    parse_body(&body)
}

/// Parses a fully-read frame body.
fn parse_body(body: &[u8]) -> Result<Frame, WireError> {
    let magic = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
    if magic != MAGIC {
        // With the magic wrong nothing else in the header is trustworthy,
        // including the id field.
        return Err(WireError::Malformed {
            id: 0,
            why: format!("bad magic {magic:#010x} (expected {MAGIC:#010x})"),
        });
    }
    // The id sits after the version byte but is parsed up front: failures
    // below should stay attributable to the request that caused them.
    // lint: allow(panic) — the length check above guarantees the body
    // holds the fixed 15-byte header, so the slice is exactly 8 bytes.
    let id = u64::from_le_bytes(body[7..15].try_into().expect("8 header bytes"));
    let version = u16::from_le_bytes([body[4], body[5]]);
    if version != VERSION {
        return Err(WireError::BadVersion { id, version });
    }
    let kind = body[6];
    let payload = &body[HEADER_LEN..];
    match kind {
        KIND_REQUEST | KIND_RESPONSE => {
            let (deadline_us, tensor_payload) = if kind == KIND_REQUEST {
                if payload.len() < 8 {
                    return Err(WireError::Malformed {
                        id,
                        why: format!(
                            "request payload of {} bytes is shorter than its 8-byte deadline field",
                            payload.len()
                        ),
                    });
                }
                // The length check above guarantees 8 bytes.
                let deadline =
                    u64::from_le_bytes(payload[..8].try_into().expect("8 deadline bytes")); // lint: allow(panic) — length checked above
                (deadline, &payload[8..])
            } else {
                (0, payload)
            };
            let (tensor, consumed) =
                Tensor::decode_wire(tensor_payload).map_err(|e| WireError::Malformed {
                    id,
                    why: format!("tensor payload: {e}"),
                })?;
            if consumed != tensor_payload.len() {
                return Err(WireError::Malformed {
                    id,
                    why: format!(
                        "{} trailing bytes after the tensor payload",
                        tensor_payload.len() - consumed
                    ),
                });
            }
            Ok(if kind == KIND_REQUEST {
                Frame::Request {
                    id,
                    deadline_us,
                    tensor,
                }
            } else {
                Frame::Response { id, tensor }
            })
        }
        KIND_ERROR => {
            if payload.len() < 6 {
                return Err(WireError::Malformed {
                    id,
                    why: "error payload shorter than code + length".to_string(),
                });
            }
            let code = ErrorCode::from_u16(u16::from_le_bytes([payload[0], payload[1]]));
            let msg_len =
                u32::from_le_bytes([payload[2], payload[3], payload[4], payload[5]]) as usize;
            if payload.len() != 6 + msg_len {
                return Err(WireError::Malformed {
                    id,
                    why: format!(
                        "error message length {msg_len} disagrees with payload size {}",
                        payload.len() - 6
                    ),
                });
            }
            let message = String::from_utf8_lossy(&payload[6..]).into_owned();
            Ok(Frame::Error { id, code, message })
        }
        KIND_RELOAD => {
            if !payload.is_empty() {
                return Err(WireError::Malformed {
                    id,
                    why: format!(
                        "reload frames carry no payload, got {} bytes",
                        payload.len()
                    ),
                });
            }
            Ok(Frame::Reload { id })
        }
        KIND_STATS => {
            let snapshot = MetricsSnapshot::decode(payload).map_err(|e| WireError::Malformed {
                id,
                why: format!("stats payload: {e}"),
            })?;
            Ok(Frame::Stats { id, snapshot })
        }
        other => Err(WireError::Malformed {
            id,
            why: format!("unknown frame kind {other}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) -> Frame {
        let bytes = encode_frame(&frame);
        let mut cursor = io::Cursor::new(bytes);
        read_frame(&mut cursor).expect("round trip")
    }

    #[test]
    fn request_and_response_frames_round_trip() {
        let tensor = Tensor::randn(&[1, 3, 8, 8], 7);
        let req = Frame::Request {
            id: 42,
            deadline_us: 0,
            tensor: tensor.clone(),
        };
        assert_eq!(round_trip(req.clone()), req);
        let resp = Frame::Response { id: 42, tensor };
        assert_eq!(round_trip(resp.clone()), resp);
    }

    #[test]
    fn request_deadlines_survive_the_wire() {
        let req = Frame::Request {
            id: 7,
            deadline_us: 250_000,
            tensor: Tensor::arange(&[1, 2, 2, 2]),
        };
        match round_trip(req.clone()) {
            Frame::Request { deadline_us, .. } => assert_eq!(deadline_us, 250_000),
            // lint: allow(panic) — test assertion.
            other => panic!("expected a request frame, got {other:?}"),
        }
        // u64::MAX (an effectively-infinite budget) is not special-cased.
        let req = Frame::Request {
            id: 8,
            deadline_us: u64::MAX,
            tensor: Tensor::arange(&[1]),
        };
        assert_eq!(round_trip(req.clone()), req);
    }

    #[test]
    fn request_payload_shorter_than_the_deadline_field_is_malformed() {
        // A request frame whose payload is 3 bytes: too short to even hold
        // the deadline field. Recoverable — the length prefix was honest.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&((HEADER_LEN + 3) as u32).to_le_bytes());
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.push(KIND_REQUEST);
        bytes.extend_from_slice(&99u64.to_le_bytes());
        bytes.extend_from_slice(&[1, 2, 3]);
        let err = read_frame(&mut io::Cursor::new(bytes)).unwrap_err();
        assert!(matches!(err, WireError::Malformed { id: 99, .. }), "{err}");
        assert!(err.is_recoverable());
    }

    #[test]
    fn error_frames_round_trip_with_code_and_message() {
        let err = Frame::Error {
            id: 9,
            code: ErrorCode::BadRequest,
            message: "expected [3, 8, 8]".to_string(),
        };
        assert_eq!(round_trip(err.clone()), err);
        // Empty messages are fine too.
        let bare = Frame::Error {
            id: 0,
            code: ErrorCode::Shutdown,
            message: String::new(),
        };
        assert_eq!(round_trip(bare.clone()), bare);
    }

    #[test]
    fn reload_frames_round_trip_and_reject_payloads() {
        let reload = Frame::Reload { id: 17 };
        assert_eq!(round_trip(reload.clone()), reload);
        assert_eq!(reload.id(), 17);
        // A reload frame smuggling payload bytes is malformed but stays
        // attributable and recoverable.
        let mut bytes = encode_frame(&reload);
        let padded_len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) + 1;
        bytes[..4].copy_from_slice(&padded_len.to_le_bytes());
        bytes.push(0xEE);
        let err = read_frame(&mut io::Cursor::new(bytes)).unwrap_err();
        assert!(matches!(err, WireError::Malformed { id: 17, .. }), "{err}");
        assert!(err.is_recoverable());
    }

    #[test]
    fn wire_bytes_start_with_len_then_dsxn() {
        let bytes = encode_frame(&Frame::Error {
            id: 1,
            code: ErrorCode::Internal,
            message: "x".to_string(),
        });
        assert_eq!(&bytes[4..8], b"DSXN");
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        assert_eq!(len, bytes.len() - 4);
    }

    #[test]
    fn eof_at_a_boundary_is_closed_but_mid_frame_is_io() {
        let mut empty = io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut empty), Err(WireError::Closed)));
        let bytes = encode_frame(&Frame::Request {
            id: 1,
            deadline_us: 0,
            tensor: Tensor::arange(&[2, 2]),
        });
        let mut truncated = io::Cursor::new(bytes[..bytes.len() - 3].to_vec());
        assert!(matches!(read_frame(&mut truncated), Err(WireError::Io(_))));
    }

    #[test]
    fn bad_magic_is_recoverable_and_consumes_the_frame() {
        let mut bytes = encode_frame(&Frame::Request {
            id: 1,
            deadline_us: 0,
            tensor: Tensor::arange(&[2, 2]),
        });
        bytes[4] = b'X'; // corrupt the magic
        let good = encode_frame(&Frame::Error {
            id: 2,
            code: ErrorCode::Shutdown,
            message: String::new(),
        });
        bytes.extend_from_slice(&good);
        let mut cursor = io::Cursor::new(bytes);
        let err = read_frame(&mut cursor).unwrap_err();
        assert!(err.is_recoverable(), "{err}");
        // The stream is still framed: the next frame parses cleanly.
        let next = read_frame(&mut cursor).unwrap();
        assert_eq!(next.id(), 2);
    }

    #[test]
    fn unsupported_version_is_recoverable() {
        let mut bytes = encode_frame(&Frame::Request {
            id: 3,
            deadline_us: 0,
            tensor: Tensor::arange(&[1]),
        });
        bytes[8] = 99; // version low byte
        let err = read_frame(&mut io::Cursor::new(bytes)).unwrap_err();
        assert!(matches!(err, WireError::BadVersion { id: 3, version: 99 }));
        assert!(err.is_recoverable());
        assert_eq!(err.frame_id(), 3);
    }

    #[test]
    fn oversize_length_prefix_is_unrecoverable() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 32]);
        let err = read_frame(&mut io::Cursor::new(bytes)).unwrap_err();
        assert!(matches!(err, WireError::TooLarge(_)));
        assert!(!err.is_recoverable());
    }

    #[test]
    fn garbled_payloads_and_unknown_kinds_are_malformed() {
        // Unknown kind.
        let mut bytes = encode_frame(&Frame::Request {
            id: 4,
            deadline_us: 0,
            tensor: Tensor::arange(&[1]),
        });
        bytes[10] = 77; // kind byte
        let err = read_frame(&mut io::Cursor::new(bytes)).unwrap_err();
        assert!(matches!(err, WireError::Malformed { id: 4, .. }));
        assert_eq!(err.frame_id(), 4, "garbled kinds stay attributable");
        // Trailing junk after a valid tensor payload.
        let mut bytes = encode_frame(&Frame::Request {
            id: 5,
            deadline_us: 0,
            tensor: Tensor::arange(&[1]),
        });
        let padded_len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) + 2;
        bytes[..4].copy_from_slice(&padded_len.to_le_bytes());
        bytes.extend_from_slice(&[0, 0]);
        assert!(matches!(
            read_frame(&mut io::Cursor::new(bytes)).unwrap_err(),
            WireError::Malformed { id: 5, .. }
        ));
        // Body shorter than the header.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(
            read_frame(&mut io::Cursor::new(bytes)).unwrap_err(),
            WireError::Malformed { id: 0, .. }
        ));
    }

    #[test]
    fn stats_frames_round_trip_empty_and_populated() {
        // The client's ask: an empty snapshot.
        let ask = Frame::Stats {
            id: 31,
            snapshot: MetricsSnapshot::default(),
        };
        assert_eq!(round_trip(ask.clone()), ask);
        assert_eq!(ask.id(), 31);
        // The server's answer: named values.
        let mut snapshot = MetricsSnapshot::default();
        snapshot.push("serve.requests", 128);
        snapshot.push("pool.steals", 7);
        let reply = Frame::Stats { id: 31, snapshot };
        let back = round_trip(reply.clone());
        assert_eq!(back, reply);
        match back {
            Frame::Stats { snapshot, .. } => {
                assert_eq!(snapshot.get("serve.requests"), Some(128));
                assert_eq!(snapshot.get("pool.steals"), Some(7));
            }
            // lint: allow(panic) — test assertion.
            other => panic!("expected a stats frame, got {other:?}"),
        }
    }

    #[test]
    fn truncated_stats_payloads_are_malformed_but_recoverable() {
        let mut snapshot = MetricsSnapshot::default();
        snapshot.push("net.bytes_read", 4096);
        let mut bytes = encode_frame(&Frame::Stats { id: 77, snapshot });
        // Chop the final value byte and fix the length prefix to match, so
        // the damage is in the payload codec, not the framing.
        bytes.pop();
        let short_len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) - 1;
        bytes[..4].copy_from_slice(&short_len.to_le_bytes());
        let err = read_frame(&mut io::Cursor::new(bytes)).unwrap_err();
        assert!(matches!(err, WireError::Malformed { id: 77, .. }), "{err}");
        assert!(err.is_recoverable());
    }

    #[test]
    fn error_codes_round_trip_and_unknowns_collapse_to_internal() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::FrameTooLarge,
            ErrorCode::UnsupportedVersion,
            ErrorCode::BadRequest,
            ErrorCode::Shutdown,
            ErrorCode::Internal,
            ErrorCode::DeadlineExceeded,
            ErrorCode::ServerBusy,
        ] {
            assert_eq!(ErrorCode::from_u16(code.as_u16()), code);
        }
        assert_eq!(ErrorCode::from_u16(999), ErrorCode::Internal);
    }
}
