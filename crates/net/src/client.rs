//! The client half of the wire protocol: a blocking [`NetClient`] that can
//! run simple round trips or pipeline many tagged requests and reassemble
//! the out-of-order responses by id.
//!
//! ## Fault tolerance
//!
//! Every socket the client opens carries read/write timeouts
//! ([`ClientConfig`]), so a black-holed or stalled server surfaces as a
//! typed [`NetError::Timeout`] instead of hanging the caller forever. On
//! top of that, [`NetClient::infer_retry`] wraps the blocking round trip in
//! a bounded [`RetryPolicy`]: connection-level failures (socket errors,
//! timeouts, garbled frames, desynced streams) and explicit
//! `ServerBusy`/`Shutdown` rejections are retried on a *fresh* connection
//! after an exponential backoff with deterministic jitter; application
//! verdicts the server actually computed (`BadRequest`,
//! `DeadlineExceeded`, ...) are returned as-is — retrying can only repeat
//! them. Inference requests are pure (no server-side state changes), and
//! each retry reconnects, so resending a frame whose response was lost can
//! never double-apply anything or mismatch a stale reply.

use crate::protocol::{self, ErrorCode, Frame, WireError};
use dsx_obs::MetricsSnapshot;
use dsx_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::OnceLock;
use std::time::Duration;

/// Cached handles for the client-side resilience counters (shared with the
/// process registry the DSXN `Stats` frame exports).
struct ClientCounters {
    retries: &'static dsx_obs::Counter,
    reconnects: &'static dsx_obs::Counter,
    timeouts: &'static dsx_obs::Counter,
}

fn counters() -> &'static ClientCounters {
    static HANDLES: OnceLock<ClientCounters> = OnceLock::new();
    HANDLES.get_or_init(|| ClientCounters {
        retries: dsx_obs::counter("net.client.retries"),
        reconnects: dsx_obs::counter("net.client.reconnects"),
        timeouts: dsx_obs::counter("net.client.timeouts"),
    })
}

/// An error surfaced to a client caller.
#[derive(Debug)]
pub enum NetError {
    /// The socket failed (or closed unexpectedly mid-conversation).
    Io(io::Error),
    /// A socket read or write ran past its configured timeout
    /// (`WouldBlock`/`TimedOut` surfaced as a typed error, so a black-holed
    /// server can never hang the client).
    Timeout,
    /// A frame off the wire did not parse.
    Wire(WireError),
    /// The server answered with an error frame.
    Server {
        /// The typed code the server sent.
        code: ErrorCode,
        /// The server's human-readable detail.
        message: String,
    },
    /// The server sent a frame kind a client should never receive.
    UnexpectedFrame(String),
}

impl NetError {
    /// Whether a bounded retry on a fresh connection makes sense: the
    /// failure was connection-level (the conversation broke, or desynced)
    /// or an explicit `ServerBusy`/`Shutdown` rejection — the server never
    /// computed an answer. Application verdicts (`BadRequest`,
    /// `DeadlineExceeded`, `Malformed`, ...) are final: the frame was
    /// accepted and judged, so a retry can only repeat the judgement.
    pub fn is_retryable(&self) -> bool {
        match self {
            NetError::Io(_) | NetError::Timeout | NetError::Wire(_) => true,
            // A desynced stream (stale or duplicated replies) heals on a
            // fresh connection.
            NetError::UnexpectedFrame(_) => true,
            NetError::Server { code, .. } => {
                matches!(code, ErrorCode::ServerBusy | ErrorCode::Shutdown)
            }
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Timeout => f.write_str("socket operation timed out"),
            NetError::Wire(e) => write!(f, "protocol error: {e}"),
            NetError::Server { code, message } => write!(f, "server error: {code}: {message}"),
            NetError::UnexpectedFrame(what) => write!(f, "unexpected frame from server: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Whether an I/O error is a socket-timeout expiry. Both kinds matter:
/// unix reports `SO_RCVTIMEO` expiry as `WouldBlock`, windows as
/// `TimedOut`.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        if is_timeout(&e) {
            counters().timeouts.inc();
            NetError::Timeout
        } else {
            NetError::Io(e)
        }
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => NetError::from(io),
            other => NetError::Wire(other),
        }
    }
}

/// Bounded-retry policy for [`NetClient::infer_retry`]: exponential
/// backoff with deterministic jitter, applied only to connection-level
/// failures (see [`NetError::is_retryable`]).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` disables retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep.
    pub max_backoff: Duration,
    /// Jitter fraction in `0.0 ..= 1.0`: each sleep is scaled by a factor
    /// drawn uniformly from `[1 - jitter, 1]`, so a thundering herd of
    /// clients decorrelates. `0.0` is fully deterministic.
    pub jitter: f64,
    /// Seed for the jitter RNG (the vendored SplitMix64 shim), so a chaos
    /// run replays bit-identically.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(200),
            jitter: 0.5,
            seed: 0x5eed_cafe,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before retry number `retry` (0-based).
    fn backoff(&self, retry: u32, rng: &mut StdRng) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX))
            .min(self.max_backoff);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 || exp.is_zero() {
            return exp;
        }
        let scale = 1.0 - jitter * rng.gen_range(0.0f64..1.0);
        exp.mul_f64(scale)
    }
}

/// Socket and retry configuration for a [`NetClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection (per resolved address).
    /// `None` blocks on the OS default.
    pub connect_timeout: Option<Duration>,
    /// `SO_RCVTIMEO`: bound on any single blocking read. `None` blocks
    /// forever — a black-holed server then hangs the caller, so the
    /// default keeps one.
    pub read_timeout: Option<Duration>,
    /// `SO_SNDTIMEO`: bound on any single blocking write.
    pub write_timeout: Option<Duration>,
    /// Retry policy for [`NetClient::infer_retry`].
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            retry: RetryPolicy::default(),
        }
    }
}

/// A blocking protocol client over one TCP connection.
///
/// Ids are assigned monotonically by [`NetClient::send_request`]; since the
/// server replies in batch-completion order, a pipelining caller must match
/// responses to requests by the echoed id ([`NetClient::read_reply`]
/// returns it) rather than by arrival order.
pub struct NetClient {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    /// The resolved peer addresses, kept for reconnects.
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    next_id: u64,
    /// Requests written whose replies have not been read yet. Transparent
    /// reconnect in the send path only fires at zero: reconnecting with
    /// replies outstanding would silently lose them, and this client
    /// never loses a response silently.
    inflight: u64,
    rng: StdRng,
}

/// One reply off the wire: the echoed request id plus the served tensor or
/// the server's typed error.
#[derive(Debug)]
pub struct Reply {
    /// The request id this reply answers (0 for unattributable protocol
    /// errors).
    pub id: u64,
    /// The served output, or the server's error frame.
    pub result: Result<Tensor, (ErrorCode, String)>,
}

/// Dials the first address that answers, under the configured timeout.
fn dial(addrs: &[SocketAddr], config: &ClientConfig) -> io::Result<TcpStream> {
    let mut last_err = None;
    for addr in addrs {
        let attempt = match config.connect_timeout {
            Some(timeout) => TcpStream::connect_timeout(addr, timeout),
            None => TcpStream::connect(addr),
        };
        match attempt {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                stream.set_read_timeout(config.read_timeout)?;
                stream.set_write_timeout(config.write_timeout)?;
                return Ok(stream);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "no addresses to connect to")
    }))
}

impl NetClient {
    /// Connects to a `dsx-net` server with the default timeouts and retry
    /// policy ([`ClientConfig::default`]).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<NetClient> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit socket timeouts and retry policy.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, config: ClientConfig) -> io::Result<NetClient> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = dial(&addrs, &config)?;
        let rng = StdRng::seed_from_u64(config.retry.seed);
        Ok(NetClient {
            writer: BufWriter::new(stream.try_clone()?),
            reader: BufReader::new(stream),
            addrs,
            config,
            next_id: 1,
            inflight: 0,
            rng,
        })
    }

    /// Requests written but not yet answered on this connection.
    pub fn inflight(&self) -> u64 {
        self.inflight
    }

    /// Tears the connection down and dials the server again (same resolved
    /// addresses, same timeouts). Any replies still in flight on the old
    /// connection are gone — the send path therefore only reconnects
    /// transparently when nothing is outstanding.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let stream = dial(&self.addrs, &self.config)?;
        self.writer = BufWriter::new(stream.try_clone()?);
        self.reader = BufReader::new(stream);
        self.inflight = 0;
        counters().reconnects.inc();
        Ok(())
    }

    /// Sends one request frame carrying `input`, returning the id assigned
    /// to it. Does not wait for the reply — callers may pipeline.
    pub fn send_request(&mut self, input: &Tensor) -> Result<u64, NetError> {
        self.send_request_deadline(input, 0)
    }

    /// Like [`NetClient::send_request`], with a serving deadline: the
    /// server sheds the request (answering `DeadlineExceeded`) if it is
    /// still queued `deadline_us` microseconds after reading the frame.
    /// `0` means no deadline.
    pub fn send_request_deadline(
        &mut self,
        input: &Tensor,
        deadline_us: u64,
    ) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_request_with_id_deadline(id, input, deadline_us)?;
        Ok(id)
    }

    /// Sends one request frame under a caller-chosen id (tests use this to
    /// interleave id spaces). The caller owns uniqueness.
    pub fn send_request_with_id(&mut self, id: u64, input: &Tensor) -> Result<(), NetError> {
        self.send_request_with_id_deadline(id, input, 0)
    }

    /// Caller-chosen id *and* serving deadline (see
    /// [`NetClient::send_request_deadline`]).
    ///
    /// If the write fails on a connection-level error while **no** replies
    /// are outstanding, the client transparently reconnects once and
    /// resends — a pipelined sender that lost its idle connection (server
    /// idle reaping, a mid-life network blip) just keeps going. With
    /// replies in flight the error surfaces instead: reconnecting would
    /// silently drop them.
    pub fn send_request_with_id_deadline(
        &mut self,
        id: u64,
        input: &Tensor,
        deadline_us: u64,
    ) -> Result<(), NetError> {
        let frame = Frame::Request {
            id,
            deadline_us,
            tensor: input.clone(),
        };
        match self.write_flush(&frame) {
            Ok(()) => {}
            Err(err) if err.is_retryable() && self.inflight == 0 => {
                self.reconnect()?;
                self.write_flush(&frame)?;
            }
            Err(err) => return Err(err),
        }
        self.inflight += 1;
        Ok(())
    }

    fn write_flush(&mut self, frame: &Frame) -> Result<(), NetError> {
        protocol::write_frame(&mut self.writer, frame)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Blocks for the next reply frame, whatever request it answers.
    pub fn read_reply(&mut self) -> Result<Reply, NetError> {
        match protocol::read_frame(&mut self.reader)? {
            Frame::Response { id, tensor } => {
                self.inflight = self.inflight.saturating_sub(1);
                Ok(Reply {
                    id,
                    result: Ok(tensor),
                })
            }
            Frame::Error { id, code, message } => {
                self.inflight = self.inflight.saturating_sub(1);
                Ok(Reply {
                    id,
                    result: Err((code, message)),
                })
            }
            Frame::Request { id, .. } => Err(NetError::UnexpectedFrame(format!(
                "request frame (id {id}) from the server"
            ))),
            Frame::Reload { id } => Err(NetError::UnexpectedFrame(format!(
                "reload frame (id {id}) from the server"
            ))),
            Frame::Stats { id, .. } => Err(NetError::UnexpectedFrame(format!(
                "unsolicited stats frame (id {id}) from the server"
            ))),
        }
    }

    /// Asks the server for a metrics snapshot ([`Frame::Stats`]) and blocks
    /// for the reply. Like [`NetClient::reload`], don't interleave with
    /// pipelined requests still awaiting their responses.
    pub fn stats(&mut self) -> Result<MetricsSnapshot, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        protocol::write_frame(
            &mut self.writer,
            &Frame::Stats {
                id,
                snapshot: MetricsSnapshot::default(),
            },
        )?;
        self.writer.flush()?;
        // A stats reply is not a tensor-or-error `Reply`, so read the frame
        // directly instead of going through read_reply.
        match protocol::read_frame(&mut self.reader)? {
            Frame::Stats {
                id: reply_id,
                snapshot,
            } if reply_id == id => Ok(snapshot),
            Frame::Error { code, message, .. } => Err(NetError::Server { code, message }),
            other => Err(NetError::UnexpectedFrame(format!(
                "frame for id {} while waiting for stats id {id}",
                other.id()
            ))),
        }
    }

    /// Asks the server to reload its model from disk and hot-swap it in
    /// (`dsx-serve --model` servers only), returning the new swap
    /// generation. Blocks for the reply, so don't interleave with
    /// pipelined requests still awaiting theirs.
    pub fn reload(&mut self) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        protocol::write_frame(&mut self.writer, &Frame::Reload { id })?;
        self.writer.flush()?;
        let reply = self.read_reply()?;
        if reply.id != id {
            return Err(NetError::UnexpectedFrame(format!(
                "reply for id {} while waiting for reload id {id}",
                reply.id
            )));
        }
        let tensor = reply
            .result
            .map_err(|(code, message)| NetError::Server { code, message })?;
        Ok(tensor.as_slice().first().copied().unwrap_or(0.0) as u64)
    }

    /// One blocking round trip: send `input`, wait for *its* reply (replies
    /// to other pipelined ids are an error here — use
    /// [`NetClient::read_reply`] when pipelining), and unwrap the output.
    pub fn infer(&mut self, input: &Tensor) -> Result<Tensor, NetError> {
        self.infer_deadline(input, 0)
    }

    /// One blocking round trip carrying a serving deadline (`deadline_us`
    /// microseconds from server receipt; `0` = none).
    pub fn infer_deadline(&mut self, input: &Tensor, deadline_us: u64) -> Result<Tensor, NetError> {
        let id = self.send_request_deadline(input, deadline_us)?;
        let reply = self.read_reply()?;
        if reply.id != id {
            return Err(NetError::UnexpectedFrame(format!(
                "reply for id {} while waiting for id {id}",
                reply.id
            )));
        }
        reply
            .result
            .map_err(|(code, message)| NetError::Server { code, message })
    }

    /// The resilient round trip: [`NetClient::infer_deadline`] wrapped in
    /// the connection's [`RetryPolicy`]. Connection-level failures retry on
    /// a fresh connection after a jittered exponential backoff, up to
    /// `max_attempts` total tries; the last error is returned when the
    /// budget is spent. Application verdicts the server actually computed
    /// are returned immediately — see [`NetError::is_retryable`] for the
    /// split, and the module docs for why resending is safe.
    ///
    /// `deadline_us` is the *per-attempt* serving budget sent on the wire
    /// (`0` = none); each retry gets a full budget on its fresh connection.
    pub fn infer_retry(&mut self, input: &Tensor, deadline_us: u64) -> Result<Tensor, NetError> {
        let policy = self.config.retry.clone();
        let attempts = policy.max_attempts.max(1);
        let mut retry = 0u32;
        loop {
            match self.infer_deadline(input, deadline_us) {
                Ok(output) => return Ok(output),
                Err(err) if err.is_retryable() && retry + 1 < attempts => {
                    counters().retries.inc();
                    std::thread::sleep(policy.backoff(retry, &mut self.rng));
                    retry += 1;
                    // The old conversation is unusable (or suspect) —
                    // every retry runs on a fresh connection. A failed
                    // redial is itself retryable until attempts run out.
                    if let Err(redial) = self.reconnect() {
                        if retry + 1 < attempts {
                            continue;
                        }
                        return Err(NetError::from(redial));
                    }
                }
                Err(err) => return Err(err),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_kinds_map_to_the_typed_variant() {
        let would_block: NetError = io::Error::new(io::ErrorKind::WouldBlock, "rcvtimeo").into();
        assert!(matches!(would_block, NetError::Timeout));
        let timed_out: NetError = io::Error::new(io::ErrorKind::TimedOut, "sndtimeo").into();
        assert!(matches!(timed_out, NetError::Timeout));
        let refused: NetError = io::Error::new(io::ErrorKind::ConnectionRefused, "no").into();
        assert!(matches!(refused, NetError::Io(_)));
        // Wire-wrapped socket timeouts classify the same way.
        let wire: NetError =
            WireError::Io(io::Error::new(io::ErrorKind::WouldBlock, "mid-frame")).into();
        assert!(matches!(wire, NetError::Timeout));
    }

    #[test]
    fn retryability_splits_connection_failures_from_verdicts() {
        assert!(NetError::Timeout.is_retryable());
        assert!(NetError::Io(io::Error::new(io::ErrorKind::ConnectionReset, "x")).is_retryable());
        assert!(NetError::Wire(WireError::Malformed {
            id: 1,
            why: "corrupt".into()
        })
        .is_retryable());
        assert!(NetError::UnexpectedFrame("stale reply".into()).is_retryable());
        assert!(NetError::Server {
            code: ErrorCode::ServerBusy,
            message: String::new()
        }
        .is_retryable());
        assert!(NetError::Server {
            code: ErrorCode::Shutdown,
            message: String::new()
        }
        .is_retryable());
        for verdict in [
            ErrorCode::BadRequest,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Malformed,
            ErrorCode::Internal,
        ] {
            assert!(
                !NetError::Server {
                    code: verdict,
                    message: String::new()
                }
                .is_retryable(),
                "{verdict} must not retry"
            );
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_respects_the_cap() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(10),
            jitter: 0.0,
            seed: 1,
        };
        let mut rng = StdRng::seed_from_u64(policy.seed);
        assert_eq!(policy.backoff(0, &mut rng), Duration::from_millis(2));
        assert_eq!(policy.backoff(1, &mut rng), Duration::from_millis(4));
        assert_eq!(policy.backoff(2, &mut rng), Duration::from_millis(8));
        assert_eq!(policy.backoff(3, &mut rng), Duration::from_millis(10));
        assert_eq!(policy.backoff(30, &mut rng), Duration::from_millis(10));
    }

    #[test]
    fn jittered_backoff_stays_within_the_band_and_is_seed_deterministic() {
        let policy = RetryPolicy {
            jitter: 0.5,
            seed: 42,
            ..RetryPolicy::default()
        };
        let mut a = StdRng::seed_from_u64(policy.seed);
        let mut b = StdRng::seed_from_u64(policy.seed);
        for retry in 0..6 {
            let full = policy
                .base_backoff
                .saturating_mul(1 << retry)
                .min(policy.max_backoff);
            let sleep = policy.backoff(retry, &mut a);
            assert!(sleep <= full, "{sleep:?} > {full:?}");
            assert!(sleep >= full.mul_f64(0.5), "{sleep:?} below the band");
            // Same seed, same sequence.
            assert_eq!(sleep, policy.backoff(retry, &mut b));
        }
    }

    #[test]
    fn connecting_to_a_dead_port_times_out_or_refuses_quickly() {
        // Bind-then-drop gives an address nothing listens on; connect must
        // come back with a typed error under the configured timeout, not
        // hang.
        let port = {
            let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            sock.local_addr().unwrap().port()
        };
        let config = ClientConfig {
            connect_timeout: Some(Duration::from_millis(500)),
            ..ClientConfig::default()
        };
        let started = std::time::Instant::now();
        let result = NetClient::connect_with(("127.0.0.1", port), config);
        assert!(result.is_err());
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "a dead port must fail fast"
        );
    }
}
