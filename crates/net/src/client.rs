//! The client half of the wire protocol: a blocking [`NetClient`] that can
//! run simple round trips or pipeline many tagged requests and reassemble
//! the out-of-order responses by id.

use crate::protocol::{self, ErrorCode, Frame, WireError};
use dsx_obs::MetricsSnapshot;
use dsx_tensor::Tensor;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// An error surfaced to a client caller.
#[derive(Debug)]
pub enum NetError {
    /// The socket failed (or closed unexpectedly mid-conversation).
    Io(io::Error),
    /// A frame off the wire did not parse.
    Wire(WireError),
    /// The server answered with an error frame.
    Server {
        /// The typed code the server sent.
        code: ErrorCode,
        /// The server's human-readable detail.
        message: String,
    },
    /// The server sent a frame kind a client should never receive.
    UnexpectedFrame(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Wire(e) => write!(f, "protocol error: {e}"),
            NetError::Server { code, message } => write!(f, "server error: {code}: {message}"),
            NetError::UnexpectedFrame(what) => write!(f, "unexpected frame from server: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => NetError::Io(io),
            other => NetError::Wire(other),
        }
    }
}

/// A blocking protocol client over one TCP connection.
///
/// Ids are assigned monotonically by [`NetClient::send_request`]; since the
/// server replies in batch-completion order, a pipelining caller must match
/// responses to requests by the echoed id ([`NetClient::read_reply`]
/// returns it) rather than by arrival order.
pub struct NetClient {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

/// One reply off the wire: the echoed request id plus the served tensor or
/// the server's typed error.
#[derive(Debug)]
pub struct Reply {
    /// The request id this reply answers (0 for unattributable protocol
    /// errors).
    pub id: u64,
    /// The served output, or the server's error frame.
    pub result: Result<Tensor, (ErrorCode, String)>,
}

impl NetClient {
    /// Connects to a `dsx-net` server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            writer: BufWriter::new(stream.try_clone()?),
            reader: BufReader::new(stream),
            next_id: 1,
        })
    }

    /// Sends one request frame carrying `input`, returning the id assigned
    /// to it. Does not wait for the reply — callers may pipeline.
    pub fn send_request(&mut self, input: &Tensor) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_request_with_id(id, input)?;
        Ok(id)
    }

    /// Sends one request frame under a caller-chosen id (tests use this to
    /// interleave id spaces). The caller owns uniqueness.
    pub fn send_request_with_id(&mut self, id: u64, input: &Tensor) -> Result<(), NetError> {
        protocol::write_frame(
            &mut self.writer,
            &Frame::Request {
                id,
                tensor: input.clone(),
            },
        )?;
        self.writer.flush()?;
        Ok(())
    }

    /// Blocks for the next reply frame, whatever request it answers.
    pub fn read_reply(&mut self) -> Result<Reply, NetError> {
        match protocol::read_frame(&mut self.reader)? {
            Frame::Response { id, tensor } => Ok(Reply {
                id,
                result: Ok(tensor),
            }),
            Frame::Error { id, code, message } => Ok(Reply {
                id,
                result: Err((code, message)),
            }),
            Frame::Request { id, .. } => Err(NetError::UnexpectedFrame(format!(
                "request frame (id {id}) from the server"
            ))),
            Frame::Reload { id } => Err(NetError::UnexpectedFrame(format!(
                "reload frame (id {id}) from the server"
            ))),
            Frame::Stats { id, .. } => Err(NetError::UnexpectedFrame(format!(
                "unsolicited stats frame (id {id}) from the server"
            ))),
        }
    }

    /// Asks the server for a metrics snapshot ([`Frame::Stats`]) and blocks
    /// for the reply. Like [`NetClient::reload`], don't interleave with
    /// pipelined requests still awaiting their responses.
    pub fn stats(&mut self) -> Result<MetricsSnapshot, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        protocol::write_frame(
            &mut self.writer,
            &Frame::Stats {
                id,
                snapshot: MetricsSnapshot::default(),
            },
        )?;
        self.writer.flush()?;
        // A stats reply is not a tensor-or-error `Reply`, so read the frame
        // directly instead of going through read_reply.
        match protocol::read_frame(&mut self.reader)? {
            Frame::Stats {
                id: reply_id,
                snapshot,
            } if reply_id == id => Ok(snapshot),
            Frame::Error { code, message, .. } => Err(NetError::Server { code, message }),
            other => Err(NetError::UnexpectedFrame(format!(
                "frame for id {} while waiting for stats id {id}",
                other.id()
            ))),
        }
    }

    /// Asks the server to reload its model from disk and hot-swap it in
    /// (`dsx-serve --model` servers only), returning the new swap
    /// generation. Blocks for the reply, so don't interleave with
    /// pipelined requests still awaiting theirs.
    pub fn reload(&mut self) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        protocol::write_frame(&mut self.writer, &Frame::Reload { id })?;
        self.writer.flush()?;
        let reply = self.read_reply()?;
        if reply.id != id {
            return Err(NetError::UnexpectedFrame(format!(
                "reply for id {} while waiting for reload id {id}",
                reply.id
            )));
        }
        let tensor = reply
            .result
            .map_err(|(code, message)| NetError::Server { code, message })?;
        Ok(tensor.as_slice().first().copied().unwrap_or(0.0) as u64)
    }

    /// One blocking round trip: send `input`, wait for *its* reply (replies
    /// to other pipelined ids are an error here — use
    /// [`NetClient::read_reply`] when pipelining), and unwrap the output.
    pub fn infer(&mut self, input: &Tensor) -> Result<Tensor, NetError> {
        let id = self.send_request(input)?;
        let reply = self.read_reply()?;
        if reply.id != id {
            return Err(NetError::UnexpectedFrame(format!(
                "reply for id {} while waiting for id {id}",
                reply.id
            )));
        }
        reply
            .result
            .map_err(|(code, message)| NetError::Server { code, message })
    }
}
