//! `dsx-serve` — the serving binary: an in-process load generator (the
//! PR-3 behaviour), a TCP server mode, and a network load-generator mode.
//!
//! ```text
//! dsx-serve [--requests N] [--concurrency N] [--backend <naive|blocked|tiled|swsum>]
//!           [--max-batch N] [--max-wait-us N] [--workers N]
//!           [--queue-capacity N] [--par-threads N] [--skip-serial]
//!           [--adaptive] [--model PATH]
//!           [--trace-out PATH] [--stats-every S]
//!           [--listen IP:PORT [--serve-secs S] [--max-conns N] [--idle-secs S]
//!                             [--max-inflight N]]
//!         | [--connect IP:PORT [--deadline-us N] [--retries N]]
//! ```
//!
//! * no address flag — build the serving model, drive the in-process
//!   batching engine with the built-in load generator, report batched vs.
//!   serial-unbatched throughput;
//! * `--listen IP:PORT` — serve the model over the `dsx-net` wire protocol
//!   (port 0 picks an ephemeral port; the bound address is printed). Runs
//!   for `--serve-secs` seconds (default: forever), then drains and prints
//!   the serving report;
//! * `--connect IP:PORT` — no model is built; drive a remote server with
//!   `--requests` round trips over `--concurrency` connections and report
//!   client-observed throughput and latency percentiles.
//!
//! Fault-tolerance knobs: with `--listen`, `--max-conns` caps live
//! connections (extras get a typed `ServerBusy` frame), `--idle-secs`
//! reaps silent connections, and `--max-inflight` caps unanswered requests
//! per connection. With `--connect`, `--deadline-us` stamps every request
//! with a serving deadline (expired requests come back as typed
//! `DeadlineExceeded`, reported as sheds) and `--retries N` wraps each
//! round trip in the bounded retry policy (N total attempts).
//!
//! `--model PATH` replaces the randomly-initialised serving model with one
//! loaded from a `dsx_models` checkpoint (trained and saved by
//! `dsx-experiments train-serve --save`). Loaded weights infer
//! bit-identically to the process that saved them — both sides print a
//! `model digest` line CI compares. With `--listen`, the checkpoint path
//! also enables the wire protocol's reload frame: a client's
//! `NetClient::reload()` re-reads the file and hot-swaps the model into
//! the live engine with zero dropped requests.
//!
//! `--trace-out PATH` turns on `dsx-obs` tracing for the whole run and
//! writes a Chrome trace-event JSON file on exit — load it in Perfetto or
//! `chrome://tracing` to see pool jobs/steals, per-layer forwards, GEMM
//! calls, batch assembly and wire reads/writes on one timeline. Because the
//! export happens at process exit, `--trace-out` with `--listen` requires
//! `--serve-secs` (a listen-forever server would never write the file).
//!
//! `--stats-every S` prints one `stats: name=value ...` line every `S`
//! seconds: the process-global `dsx-obs` metrics registry (pool, GEMM and
//! wire counters) merged with the live serving stats when an engine runs in
//! this process. It needs a local engine, so it conflicts with `--connect`.
//!
//! Every flag is parsed (and validated) *before* the model is built: the
//! kernel backend is a process-wide construction-time default in
//! `dsx-core`, so a flag error after construction would be both too late
//! and misleading. Invalid flags — including `--listen` together with
//! `--connect`, unparseable socket addresses, and a `--model` checkpoint
//! that is missing, corrupt, version-mismatched or shaped wrong for the
//! serving workload — exit with status 2 before any engine spins up.

use dsx_core::BackendKind;
use dsx_models::{model_digest, Checkpoint};
use dsx_net::{NetLoadConfig, NetServer, NetServerConfig, ReloadFn, RetryPolicy};
use dsx_serve::loadgen::INPUT_HW;
use dsx_serve::{
    build_serving_model, run_load, run_serial, serving_spec, AdaptiveWaitConfig, LoadConfig,
    ServeConfig,
};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
struct Cli {
    requests: usize,
    concurrency: usize,
    backend: BackendKind,
    max_batch: usize,
    max_wait: Duration,
    workers: usize,
    queue_capacity: usize,
    /// Kernel-level threads inside one forward pass. Defaults to 1 so the
    /// worker pool (request-level parallelism) is the only thread source
    /// and batched-vs-serial numbers compare like for like.
    par_threads: usize,
    skip_serial: bool,
    /// Enable the adaptive `max_wait` controller on the engine.
    adaptive: bool,
    /// Serve the engine over TCP on this address.
    listen: Option<SocketAddr>,
    /// Drive a remote server at this address instead of running locally.
    connect: Option<SocketAddr>,
    /// With `--listen`: serve this many seconds, then drain and report.
    /// `None` = run until killed.
    serve_secs: Option<f64>,
    /// Serve weights loaded from this checkpoint instead of the
    /// randomly-initialised serving model.
    model: Option<PathBuf>,
    /// Enable tracing and export Chrome trace-event JSON here on exit.
    trace_out: Option<PathBuf>,
    /// Print a one-line metrics snapshot every this many seconds.
    stats_every: Option<f64>,
    /// With `--listen`: cap on live connections (extra connections get one
    /// `ServerBusy` frame and a close).
    max_conns: Option<usize>,
    /// With `--listen`: reap connections idle this many seconds.
    idle_secs: Option<f64>,
    /// With `--listen`: per-connection cap on unanswered requests.
    max_inflight: Option<usize>,
    /// With `--connect`: per-request serving deadline in µs (0 = none).
    deadline_us: u64,
    /// With `--connect`: total attempts per request (retry on
    /// connection-level failures). `None` = plain round trips.
    retries: Option<u32>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            requests: 256,
            concurrency: 16,
            backend: BackendKind::Blocked,
            max_batch: 8,
            max_wait: Duration::from_micros(2000),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 32,
            par_threads: 1,
            skip_serial: false,
            adaptive: false,
            listen: None,
            connect: None,
            serve_secs: None,
            model: None,
            trace_out: None,
            stats_every: None,
            max_conns: None,
            idle_secs: None,
            max_inflight: None,
            deadline_us: 0,
            retries: None,
        }
    }
}

const USAGE: &str = "usage: dsx-serve [--requests N] [--concurrency N] \
[--backend <naive|blocked|tiled|swsum>] [--max-batch N] [--max-wait-us N] [--workers N] \
[--queue-capacity N] [--par-threads N] [--skip-serial] [--adaptive] [--model PATH] \
[--trace-out PATH] [--stats-every S] \
[--listen IP:PORT [--serve-secs S] [--max-conns N] [--idle-secs S] [--max-inflight N]] | \
[--connect IP:PORT [--deadline-us N] [--retries N]]";

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        // Accept both `--flag value` and `--flag=value`.
        let (flag, inline_value) = match arg.split_once('=') {
            Some((flag, value)) => (flag, Some(value.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = |flag: &str| -> Result<String, String> {
            match &inline_value {
                Some(v) => Ok(v.clone()),
                None => iter
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value\n{USAGE}")),
            }
        };
        let parse_usize = |flag: &str, value: String| -> Result<usize, String> {
            value
                .parse::<usize>()
                .map_err(|e| format!("{flag} must be a non-negative integer: {e}\n{USAGE}"))
        };
        let parse_addr = |flag: &str, value: String| -> Result<SocketAddr, String> {
            value.parse::<SocketAddr>().map_err(|e| {
                format!("{flag} must be a socket address like 127.0.0.1:7878: {e}\n{USAGE}")
            })
        };
        match flag {
            "--requests" => cli.requests = parse_usize(flag, value(flag)?)?,
            "--concurrency" => cli.concurrency = parse_usize(flag, value(flag)?)?.max(1),
            "--backend" => cli.backend = value(flag)?.parse::<BackendKind>()?,
            "--max-batch" => {
                cli.max_batch = parse_usize(flag, value(flag)?)?;
                if cli.max_batch == 0 {
                    return Err(format!("--max-batch must be at least 1\n{USAGE}"));
                }
            }
            "--max-wait-us" => {
                cli.max_wait = Duration::from_micros(parse_usize(flag, value(flag)?)? as u64)
            }
            "--workers" => cli.workers = parse_usize(flag, value(flag)?)?.max(1),
            "--queue-capacity" => cli.queue_capacity = parse_usize(flag, value(flag)?)?.max(1),
            "--par-threads" => cli.par_threads = parse_usize(flag, value(flag)?)?,
            "--skip-serial" => cli.skip_serial = true,
            "--adaptive" => cli.adaptive = true,
            "--listen" => cli.listen = Some(parse_addr(flag, value(flag)?)?),
            "--connect" => cli.connect = Some(parse_addr(flag, value(flag)?)?),
            "--model" => cli.model = Some(PathBuf::from(value(flag)?)),
            "--trace-out" => cli.trace_out = Some(PathBuf::from(value(flag)?)),
            "--stats-every" => {
                let raw = value(flag)?;
                let secs = raw.parse::<f64>().map_err(|e| {
                    format!("--stats-every must be a number of seconds: {e}\n{USAGE}")
                })?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("--stats-every must be positive\n{USAGE}"));
                }
                cli.stats_every = Some(secs);
            }
            "--serve-secs" => {
                let raw = value(flag)?;
                let secs = raw.parse::<f64>().map_err(|e| {
                    format!("--serve-secs must be a number of seconds: {e}\n{USAGE}")
                })?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("--serve-secs must be positive\n{USAGE}"));
                }
                cli.serve_secs = Some(secs);
            }
            "--max-conns" => {
                let cap = parse_usize(flag, value(flag)?)?;
                if cap == 0 {
                    return Err(format!("--max-conns must be at least 1\n{USAGE}"));
                }
                cli.max_conns = Some(cap);
            }
            "--idle-secs" => {
                let raw = value(flag)?;
                let secs = raw.parse::<f64>().map_err(|e| {
                    format!("--idle-secs must be a number of seconds: {e}\n{USAGE}")
                })?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("--idle-secs must be positive\n{USAGE}"));
                }
                cli.idle_secs = Some(secs);
            }
            "--max-inflight" => {
                let cap = parse_usize(flag, value(flag)?)?;
                if cap == 0 {
                    return Err(format!("--max-inflight must be at least 1\n{USAGE}"));
                }
                cli.max_inflight = Some(cap);
            }
            "--deadline-us" => cli.deadline_us = parse_usize(flag, value(flag)?)? as u64,
            "--retries" => {
                let attempts = parse_usize(flag, value(flag)?)?;
                if attempts == 0 {
                    return Err(format!(
                        "--retries counts total attempts, so it must be at least 1\n{USAGE}"
                    ));
                }
                cli.retries = Some(attempts.min(u32::MAX as usize) as u32);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if cli.listen.is_some() && cli.connect.is_some() {
        return Err(format!(
            "--listen and --connect are mutually exclusive (serve *or* drive, not both)\n{USAGE}"
        ));
    }
    if cli.serve_secs.is_some() && cli.listen.is_none() {
        return Err(format!("--serve-secs only applies with --listen\n{USAGE}"));
    }
    if cli.adaptive && cli.connect.is_some() {
        return Err(format!(
            "--adaptive tunes the local engine; it has no effect with --connect\n{USAGE}"
        ));
    }
    if cli.model.is_some() && cli.connect.is_some() {
        return Err(format!(
            "--model loads weights into the local engine; it has no effect with --connect\n{USAGE}"
        ));
    }
    if cli.stats_every.is_some() && cli.connect.is_some() {
        return Err(format!(
            "--stats-every reads the local engine's metrics; it has no effect with --connect\n{USAGE}"
        ));
    }
    if cli.trace_out.is_some() && cli.listen.is_some() && cli.serve_secs.is_none() {
        return Err(format!(
            "--trace-out exports at exit, so with --listen it needs --serve-secs\n{USAGE}"
        ));
    }
    // Connection hygiene shapes the local server; retry/deadline shape the
    // remote-driving client. Each family is meaningless on the other side.
    for (set, flag) in [
        (cli.max_conns.is_some(), "--max-conns"),
        (cli.idle_secs.is_some(), "--idle-secs"),
        (cli.max_inflight.is_some(), "--max-inflight"),
    ] {
        if set && cli.listen.is_none() {
            return Err(format!(
                "{flag} configures the local server, so it needs --listen\n{USAGE}"
            ));
        }
    }
    for (set, flag) in [
        (cli.deadline_us > 0, "--deadline-us"),
        (cli.retries.is_some(), "--retries"),
    ] {
        if set && cli.connect.is_none() {
            return Err(format!(
                "{flag} shapes the driving client, so it needs --connect\n{USAGE}"
            ));
        }
    }
    Ok(cli)
}

/// Loads and validates the `--model` checkpoint, or exits 2 with a
/// one-line reason — missing file, corrupt bytes, version mismatch and a
/// workload-incompatible topology all fail here, before any engine or
/// thread pool spins up.
fn load_model_checkpoint(path: &std::path::Path) -> Checkpoint {
    let ckpt = match Checkpoint::load(path) {
        Ok(ckpt) => ckpt,
        Err(e) => {
            eprintln!("dsx-serve: cannot load --model {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    if let Err(e) = dsx_models::validate_spec(&ckpt.spec) {
        eprintln!("dsx-serve: --model {} is not servable: {e}", path.display());
        std::process::exit(2);
    }
    // The loadgen and the declared request shape both come from the
    // checkpoint's own spec, so any first layer works for --listen; the
    // in-process loadgen however drives the fixed serving workload shape.
    match ckpt.spec.convs.first() {
        Some(first) if first.in_hw == INPUT_HW && first.cin == 3 => ckpt,
        Some(first) => {
            eprintln!(
                "dsx-serve: --model {} serves [{}, {}, {}] inputs; the serving workload needs [3, {INPUT_HW}, {INPUT_HW}]",
                path.display(),
                first.cin,
                first.in_hw,
                first.in_hw,
            );
            std::process::exit(2);
        }
        None => {
            eprintln!(
                "dsx-serve: --model {} has no convolution layers",
                path.display()
            );
            std::process::exit(2);
        }
    }
}

/// The engine configuration the in-process and `--listen` modes share.
fn engine_config(cli: &Cli) -> ServeConfig {
    let mut config = ServeConfig {
        max_batch: cli.max_batch,
        max_wait: cli.max_wait,
        queue_capacity: cli.queue_capacity,
        workers: cli.workers,
        request_dims: None,
        adaptive: None,
    };
    if cli.adaptive {
        config.adaptive = Some(AdaptiveWaitConfig::default());
    }
    config
}

/// Stops recording and writes the Chrome trace when `--trace-out` was
/// given. Called explicitly on every reporting exit path because the error
/// paths below use `process::exit`, which skips destructors.
fn export_trace(cli: &Cli) {
    let Some(path) = &cli.trace_out else { return };
    dsx_obs::enable(false);
    match dsx_obs::export_chrome_trace(path) {
        Ok(events) => println!("trace: wrote {events} events to {}", path.display()),
        Err(e) => {
            eprintln!(
                "dsx-serve: cannot write --trace-out {}: {e}",
                path.display()
            );
            std::process::exit(1);
        }
    }
}

/// The `--stats-every` printer: one `stats: name=value ...` line per tick.
/// The global registry always rides along; an `Arc<ServeStats>` adds the
/// live serving counters when this process runs an engine we can reach.
/// (Deliberately not a `ServeHandle` — that would hold the request queue
/// open and stall the engine's shutdown drain.)
fn spawn_stats_printer(every: f64, stats: Option<Arc<dsx_serve::ServeStats>>) {
    let tick = Duration::from_secs_f64(every);
    let spawned = std::thread::Builder::new()
        .name("dsx-stats".to_string())
        .spawn(move || loop {
            std::thread::sleep(tick);
            let mut snapshot = dsx_obs::snapshot();
            if let Some(stats) = &stats {
                stats.export_metrics(&mut snapshot);
                snapshot.sort();
            }
            println!("stats: {snapshot}");
        });
    if let Err(e) = spawned {
        eprintln!("dsx-serve: cannot start the --stats-every printer: {e}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    // Tracing turns on before anything interesting runs so the exported
    // timeline covers the whole process, model construction included.
    if cli.trace_out.is_some() {
        dsx_obs::enable(true);
    }

    if let Some(addr) = cli.connect {
        run_connect_mode(&cli, addr);
        export_trace(&cli);
        return;
    }

    // The --model checkpoint is loaded and validated with the flags: a
    // missing, corrupt or incompatible file exits 2 here, before any
    // construction-time state is touched.
    let ckpt = cli.model.as_deref().map(load_model_checkpoint);

    // Flags are fully validated; only now may construction-time state be
    // touched (the backend default is read when layers are built).
    dsx_core::set_default_backend(cli.backend);
    dsx_tensor::set_num_threads(cli.par_threads);

    let (spec, model): (_, Arc<dyn dsx_nn::Layer>) = match &ckpt {
        Some(ckpt) => match ckpt.build_model(cli.backend) {
            Ok(model) => (ckpt.spec.clone(), Arc::new(model) as Arc<dyn dsx_nn::Layer>),
            Err(e) => {
                eprintln!("dsx-serve: cannot rebuild the --model checkpoint: {e}");
                std::process::exit(2);
            }
        },
        None => {
            let spec = serving_spec();
            let model = build_serving_model(&spec, cli.backend);
            (spec, model)
        }
    };
    println!(
        "serving model: {} ({:.2} MFLOPs/request, backend {})",
        spec.name,
        spec.mflops(),
        cli.backend
    );
    // The digest fingerprints the weights actually being served; CI compares
    // it against the line the saving process printed to gate bit-identical
    // round trips.
    println!("model digest: {:08x}", model_digest(&*model, &spec));

    if let Some(addr) = cli.listen {
        run_listen_mode(&cli, addr, model);
        return;
    }

    // No engine handle to thread through here: `run_load` owns its engine
    // internally, so the printer reports the process-global registry (pool,
    // GEMM, wire counters).
    if let Some(every) = cli.stats_every {
        spawn_stats_printer(every, None);
    }

    let serial = if cli.skip_serial {
        None
    } else {
        let report = run_serial(&*model, cli.requests.clamp(1, 64));
        println!(
            "serial-unbatched: {} requests, {:.1} req/s ({:.3} ms/request)",
            report.requests,
            report.throughput_rps,
            1e3 * report.elapsed_secs / report.requests as f64
        );
        Some(report)
    };

    let cfg = LoadConfig {
        requests: cli.requests,
        concurrency: cli.concurrency,
        engine: engine_config(&cli),
    };
    println!(
        "batched engine: max_batch {}, max_wait {} us{}, {} workers, {} clients",
        cli.max_batch,
        cli.max_wait.as_micros(),
        if cli.adaptive { " (adaptive)" } else { "" },
        cli.workers,
        cli.concurrency
    );
    let snapshot = run_load(Arc::clone(&model), &cfg);
    println!("batched: {snapshot}");

    if let Some(serial) = serial {
        println!(
            "speedup: {:.2}x batched over serial-unbatched",
            snapshot.throughput_rps / serial.throughput_rps
        );
    }
    export_trace(&cli);
    if snapshot.dropped_requests > 0 {
        eprintln!(
            "dsx-serve: {} requests were dropped during the run",
            snapshot.dropped_requests
        );
        std::process::exit(1);
    }
}

/// `--listen`: serve the engine over TCP, forever or for `--serve-secs`.
fn run_listen_mode(cli: &Cli, addr: SocketAddr, model: Arc<dyn dsx_nn::Layer>) {
    let mut config = engine_config(cli);
    // Network clients speak the serving model's request shape; declaring it
    // turns a stray shape into a per-request error frame instead of a
    // poisoned batch. (--model checkpoints are validated to this same shape
    // before anything is built.)
    config.request_dims = Some(vec![3, INPUT_HW, INPUT_HW]);
    // With --model, a client's reload frame re-reads the same checkpoint
    // path and hot-swaps the result into the live engine — in-flight
    // batches finish on the old weights, nothing is dropped.
    let reload: Option<ReloadFn> = cli.model.clone().map(|path| {
        let backend = cli.backend;
        Arc::new(move || {
            let ckpt = Checkpoint::load(&path).map_err(|e| e.to_string())?;
            let model = ckpt.build_model(backend).map_err(|e| e.to_string())?;
            Ok(Arc::new(model) as Arc<dyn dsx_nn::Layer>)
        }) as ReloadFn
    });
    let net_config = NetServerConfig {
        max_conns: cli.max_conns,
        idle_timeout: cli.idle_secs.map(Duration::from_secs_f64),
        max_inflight: cli.max_inflight,
        ..NetServerConfig::from(config)
    };
    let server = match NetServer::start_net(&addr.to_string(), model, net_config, reload) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("dsx-serve: cannot listen on {addr}: {e}");
            std::process::exit(1);
        }
    };
    // The exact line (with the resolved ephemeral port) scripts parse.
    println!("listening on {}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    if let Some(every) = cli.stats_every {
        spawn_stats_printer(every, Some(server.stats_arc()));
    }
    match cli.serve_secs {
        Some(secs) => {
            std::thread::sleep(Duration::from_secs_f64(secs));
            let snapshot = server.shutdown();
            println!("served: {snapshot}");
            export_trace(cli);
            if snapshot.dropped_requests > 0 {
                eprintln!(
                    "dsx-serve: {} requests were dropped during the run",
                    snapshot.dropped_requests
                );
                std::process::exit(1);
            }
        }
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
}

/// `--connect`: drive a remote server and report client-observed numbers.
fn run_connect_mode(cli: &Cli, addr: SocketAddr) {
    println!(
        "net loadgen -> {addr}: {} requests over {} connections",
        cli.requests, cli.concurrency
    );
    let retry = cli.retries.map(|max_attempts| RetryPolicy {
        max_attempts,
        ..RetryPolicy::default()
    });
    let serial = if cli.skip_serial {
        None
    } else {
        let report = dsx_net::run_net_load(
            addr,
            &NetLoadConfig {
                requests: cli.requests.clamp(1, 64),
                concurrency: 1,
                deadline_us: cli.deadline_us,
                retry: retry.clone(),
            },
        );
        println!("net serial (1 connection): {report}");
        Some(report)
    };
    let report = dsx_net::run_net_load(
        addr,
        &NetLoadConfig {
            requests: cli.requests,
            concurrency: cli.concurrency,
            deadline_us: cli.deadline_us,
            retry,
        },
    );
    println!("net batched ({} connections): {report}", cli.concurrency);
    if let Some(serial) = serial {
        println!(
            "speedup: {:.2}x concurrent over single-connection",
            report.throughput_rps / serial.throughput_rps
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_apply_with_no_flags() {
        let cli = parse_cli(&[]).unwrap();
        assert_eq!(cli, Cli::default());
    }

    #[test]
    fn flags_parse_in_both_spellings() {
        let cli = parse_cli(&args(&[
            "--requests",
            "32",
            "--backend=naive",
            "--max-batch=4",
            "--max-wait-us",
            "500",
            "--skip-serial",
        ]))
        .unwrap();
        assert_eq!(cli.requests, 32);
        assert_eq!(cli.backend, BackendKind::Naive);
        assert_eq!(cli.max_batch, 4);
        assert_eq!(cli.max_wait, Duration::from_micros(500));
        assert!(cli.skip_serial);
    }

    #[test]
    fn invalid_backend_is_a_parse_error_not_a_warning() {
        let err = parse_cli(&args(&["--backend", "cuda"])).unwrap_err();
        assert!(err.contains("unknown kernel backend"), "{err}");
    }

    #[test]
    fn unknown_flags_and_missing_values_error_out() {
        assert!(parse_cli(&args(&["--frobnicate"])).is_err());
        assert!(parse_cli(&args(&["--requests"])).is_err());
        assert!(parse_cli(&args(&["--max-batch", "0"])).is_err());
        assert!(parse_cli(&args(&["--requests", "many"])).is_err());
    }

    #[test]
    fn network_addresses_parse_and_validate() {
        let cli = parse_cli(&args(&["--listen", "127.0.0.1:0"])).unwrap();
        assert_eq!(cli.listen.unwrap().port(), 0);
        let cli = parse_cli(&args(&["--connect=127.0.0.1:7878"])).unwrap();
        assert_eq!(cli.connect.unwrap().port(), 7878);
        // Hostnames, bare ports and junk are rejected up front.
        for bad in ["localhost:7878", "7878", "127.0.0.1", "1.2.3.4:notaport"] {
            let err = parse_cli(&args(&["--listen", bad])).unwrap_err();
            assert!(err.contains("socket address"), "{bad}: {err}");
        }
    }

    #[test]
    fn listen_and_connect_are_mutually_exclusive() {
        let err = parse_cli(&args(&[
            "--listen",
            "127.0.0.1:0",
            "--connect",
            "127.0.0.1:1",
        ]))
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn serve_secs_requires_listen_and_positivity() {
        assert!(parse_cli(&args(&["--serve-secs", "5"])).is_err());
        assert!(parse_cli(&args(&["--listen", "127.0.0.1:0", "--serve-secs", "0"])).is_err());
        assert!(parse_cli(&args(&["--listen", "127.0.0.1:0", "--serve-secs", "nan"])).is_err());
        let cli = parse_cli(&args(&["--listen", "127.0.0.1:0", "--serve-secs", "2.5"])).unwrap();
        assert_eq!(cli.serve_secs, Some(2.5));
    }

    #[test]
    fn adaptive_conflicts_with_connect_but_not_listen() {
        assert!(parse_cli(&args(&["--connect", "127.0.0.1:1", "--adaptive"])).is_err());
        let cli = parse_cli(&args(&["--listen", "127.0.0.1:0", "--adaptive"])).unwrap();
        assert!(cli.adaptive);
        assert!(engine_config(&cli).adaptive.is_some());
    }

    #[test]
    fn trace_out_parses_and_listen_mode_requires_serve_secs() {
        let cli = parse_cli(&args(&["--trace-out", "/tmp/trace.json"])).unwrap();
        assert_eq!(
            cli.trace_out.as_deref(),
            Some(std::path::Path::new("/tmp/trace.json"))
        );
        // Connect mode may trace its client-side wire spans.
        assert!(parse_cli(&args(&[
            "--trace-out=/tmp/t.json",
            "--connect",
            "127.0.0.1:1"
        ]))
        .is_ok());
        // A listen-forever server would never export; require --serve-secs.
        let err = parse_cli(&args(&[
            "--trace-out",
            "/tmp/t.json",
            "--listen",
            "127.0.0.1:0",
        ]))
        .unwrap_err();
        assert!(err.contains("--serve-secs"), "{err}");
        assert!(parse_cli(&args(&[
            "--trace-out",
            "/tmp/t.json",
            "--listen",
            "127.0.0.1:0",
            "--serve-secs",
            "1",
        ]))
        .is_ok());
    }

    #[test]
    fn stats_every_validates_and_conflicts_with_connect() {
        let cli = parse_cli(&args(&["--stats-every", "0.5"])).unwrap();
        assert_eq!(cli.stats_every, Some(0.5));
        assert!(parse_cli(&args(&["--stats-every", "0"])).is_err());
        assert!(parse_cli(&args(&["--stats-every", "inf"])).is_err());
        assert!(parse_cli(&args(&["--stats-every", "soon"])).is_err());
        let err =
            parse_cli(&args(&["--stats-every", "1", "--connect", "127.0.0.1:1"])).unwrap_err();
        assert!(err.contains("--connect"), "{err}");
    }

    #[test]
    fn hygiene_flags_parse_and_require_listen() {
        let cli = parse_cli(&args(&[
            "--listen",
            "127.0.0.1:0",
            "--max-conns",
            "8",
            "--idle-secs",
            "2.5",
            "--max-inflight=4",
        ]))
        .unwrap();
        assert_eq!(cli.max_conns, Some(8));
        assert_eq!(cli.idle_secs, Some(2.5));
        assert_eq!(cli.max_inflight, Some(4));
        // Zero caps and non-positive idle windows are rejected up front.
        assert!(parse_cli(&args(&["--listen", "127.0.0.1:0", "--max-conns", "0"])).is_err());
        assert!(parse_cli(&args(&["--listen", "127.0.0.1:0", "--max-inflight", "0"])).is_err());
        assert!(parse_cli(&args(&["--listen", "127.0.0.1:0", "--idle-secs", "0"])).is_err());
        assert!(parse_cli(&args(&["--listen", "127.0.0.1:0", "--idle-secs", "inf"])).is_err());
        // Server-side knobs without a server to configure: exit 2.
        for flags in [
            ["--max-conns", "8"],
            ["--idle-secs", "2"],
            ["--max-inflight", "4"],
        ] {
            let err = parse_cli(&args(&flags)).unwrap_err();
            assert!(err.contains("--listen"), "{flags:?}: {err}");
        }
    }

    #[test]
    fn resilience_flags_parse_and_require_connect() {
        let cli = parse_cli(&args(&[
            "--connect",
            "127.0.0.1:1",
            "--deadline-us",
            "5000",
            "--retries=4",
        ]))
        .unwrap();
        assert_eq!(cli.deadline_us, 5_000);
        assert_eq!(cli.retries, Some(4));
        // --retries counts total attempts, so 0 is meaningless.
        assert!(parse_cli(&args(&["--connect", "127.0.0.1:1", "--retries", "0"])).is_err());
        // Client-side knobs without a client to shape: exit 2.
        let err = parse_cli(&args(&["--deadline-us", "5000"])).unwrap_err();
        assert!(err.contains("--connect"), "{err}");
        let err = parse_cli(&args(&["--retries", "3"])).unwrap_err();
        assert!(err.contains("--connect"), "{err}");
        let err = parse_cli(&args(&["--listen", "127.0.0.1:0", "--retries", "3"])).unwrap_err();
        assert!(err.contains("--connect"), "{err}");
    }

    #[test]
    fn model_flag_parses_but_conflicts_with_connect() {
        let cli = parse_cli(&args(&["--model", "/tmp/m.ckpt"])).unwrap();
        assert_eq!(
            cli.model.as_deref(),
            Some(std::path::Path::new("/tmp/m.ckpt"))
        );
        let cli = parse_cli(&args(&["--model=/tmp/m.ckpt", "--listen", "127.0.0.1:0"])).unwrap();
        assert!(cli.model.is_some());
        assert!(parse_cli(&args(&["--model"])).is_err());
        let err = parse_cli(&args(&[
            "--model",
            "/tmp/m.ckpt",
            "--connect",
            "127.0.0.1:1",
        ]))
        .unwrap_err();
        assert!(err.contains("--connect"), "{err}");
    }
}
