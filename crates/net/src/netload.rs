//! The network load generator: concurrent [`NetClient`] connections
//! hammering a `dsx-net` server, with client-observed latency percentiles
//! — the socket-side counterpart of `dsx_serve::loadgen`.

use crate::client::{ClientConfig, NetClient, NetError, RetryPolicy};
use crate::protocol::ErrorCode;
use dsx_obs::Histogram;
use dsx_serve::loadgen::{request_input, CLASSES};
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Load shape: how many requests, over how many concurrent connections.
#[derive(Debug, Clone)]
pub struct NetLoadConfig {
    /// Total requests to send across all connections.
    pub requests: usize,
    /// Concurrent client connections (each its own TCP stream + thread).
    pub concurrency: usize,
    /// Per-request serving deadline in microseconds, sent on the wire
    /// (`0` = none). Requests the server sheds past it count as
    /// [`NetLoadReport::shed_requests`], not failures.
    pub deadline_us: u64,
    /// When set, every round trip runs through
    /// [`NetClient::infer_retry`] under this policy; `None` keeps the
    /// plain blocking round trip.
    pub retry: Option<RetryPolicy>,
}

impl Default for NetLoadConfig {
    fn default() -> Self {
        NetLoadConfig {
            requests: 256,
            concurrency: 16,
            deadline_us: 0,
            retry: None,
        }
    }
}

/// What a load run measured, from the client's side of the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct NetLoadReport {
    /// Requests completed.
    pub requests: usize,
    /// Wall-clock seconds for the whole run.
    pub elapsed_secs: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Mean client-observed round-trip latency in µs.
    pub mean_latency_us: f64,
    /// Median client-observed round-trip latency in µs.
    pub p50_latency_us: u64,
    /// 95th-percentile client-observed round-trip latency in µs.
    pub p95_latency_us: u64,
    /// 99th-percentile client-observed round-trip latency in µs.
    pub p99_latency_us: u64,
    /// Worst client-observed round-trip latency in µs.
    pub max_latency_us: u64,
    /// Requests the server answered `DeadlineExceeded` (only possible when
    /// [`NetLoadConfig::deadline_us`] is nonzero). Not counted in
    /// `requests` or the latency statistics.
    pub shed_requests: usize,
}

impl std::fmt::Display for NetLoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests in {:.2} s ({:.1} req/s); round-trip latency mean {:.0} us, \
             p50 {} us, p95 {} us, p99 {} us, max {} us",
            self.requests,
            self.elapsed_secs,
            self.throughput_rps,
            self.mean_latency_us,
            self.p50_latency_us,
            self.p95_latency_us,
            self.p99_latency_us,
            self.max_latency_us,
        )?;
        if self.shed_requests > 0 {
            write!(f, "; {} shed past deadline", self.shed_requests)?;
        }
        Ok(())
    }
}

/// Drives a server at `addr` with `cfg.concurrency` connections issuing
/// `cfg.requests` blocking round trips in total (the serving-tower request
/// shape), and folds the client-observed latencies into a report. Panics on
/// any transport or server error — a load run with silent failures would
/// report fiction.
///
/// Latencies fold into the shared [`dsx_obs::Histogram`] — the same
/// 256-bucket log histogram the serving engine and the pool stats use —
/// recorded lock-free from every connection thread.
pub fn run_net_load<A: ToSocketAddrs + Sync>(addr: A, cfg: &NetLoadConfig) -> NetLoadReport {
    assert!(cfg.concurrency >= 1, "need at least one connection");
    let latency = Histogram::new();
    let shed = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..cfg.concurrency {
            // Front connections take the remainder so exactly `requests` flow.
            let share = cfg.requests / cfg.concurrency
                + usize::from(client < cfg.requests % cfg.concurrency);
            let addr = &addr;
            let latency = &latency;
            let shed = &shed;
            scope.spawn(move || {
                let client_config = ClientConfig {
                    retry: cfg.retry.clone().unwrap_or_default(),
                    ..ClientConfig::default()
                };
                let mut conn = NetClient::connect_with(addr, client_config)
                    // lint: allow(panic) — load-measurement harness: a client
                    // that cannot connect invalidates the run, so die loudly.
                    .expect("connecting the load client");
                for i in 0..share {
                    let seed = (client * 1_000_003 + i) as u64;
                    let input = request_input(seed);
                    let sent = Instant::now();
                    let result = match cfg.retry {
                        Some(_) => conn.infer_retry(&input, cfg.deadline_us),
                        None => conn.infer_deadline(&input, cfg.deadline_us),
                    };
                    match result {
                        Ok(out) => {
                            latency.record(sent.elapsed().as_micros() as u64);
                            assert_eq!(out.shape(), &[1, CLASSES], "response shape mismatch");
                        }
                        // With a deadline set, a shed is a measured outcome
                        // of the load shape, not a harness failure.
                        Err(NetError::Server {
                            code: ErrorCode::DeadlineExceeded,
                            ..
                        }) if cfg.deadline_us > 0 => {
                            // ORDER: racy-tolerant counter, folded after join.
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        // lint: allow(panic) — harness: a failed round trip
                        // poisons the latency sample, so abort the run.
                        Err(e) => panic!("round trip failed mid-load: {e}"),
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed().max(Duration::from_nanos(1));
    let requests = latency.count() as usize;
    NetLoadReport {
        requests,
        elapsed_secs: elapsed.as_secs_f64(),
        throughput_rps: requests as f64 / elapsed.as_secs_f64(),
        mean_latency_us: latency.mean(),
        p50_latency_us: latency.percentile(0.50),
        p95_latency_us: latency.percentile(0.95),
        p99_latency_us: latency.percentile(0.99),
        max_latency_us: latency.max(),
        shed_requests: shed.load(Ordering::Relaxed), // ORDER: threads joined above
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_statistics_come_from_the_shared_histogram() {
        // Sub-16 µs values land one per bucket, so the shared histogram
        // reports them exactly — pinning the fold-into-report plumbing.
        let latency = Histogram::new();
        for us in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            latency.record(us);
        }
        assert_eq!(latency.count(), 10);
        assert_eq!(latency.percentile(0.50), 5);
        assert_eq!(latency.percentile(0.95), 10);
        assert_eq!(latency.max(), 10);
        assert!((latency.mean() - 5.5).abs() < 1e-9);
    }
}
