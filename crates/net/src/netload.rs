//! The network load generator: concurrent [`NetClient`] connections
//! hammering a `dsx-net` server, with client-observed latency percentiles
//! — the socket-side counterpart of `dsx_serve::loadgen`.

use crate::client::NetClient;
use dsx_serve::loadgen::{request_input, CLASSES};
use std::net::ToSocketAddrs;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Load shape: how many requests, over how many concurrent connections.
#[derive(Debug, Clone)]
pub struct NetLoadConfig {
    /// Total requests to send across all connections.
    pub requests: usize,
    /// Concurrent client connections (each its own TCP stream + thread).
    pub concurrency: usize,
}

/// What a load run measured, from the client's side of the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct NetLoadReport {
    /// Requests completed.
    pub requests: usize,
    /// Wall-clock seconds for the whole run.
    pub elapsed_secs: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Mean client-observed round-trip latency in µs.
    pub mean_latency_us: f64,
    /// Median client-observed round-trip latency in µs.
    pub p50_latency_us: u64,
    /// 95th-percentile client-observed round-trip latency in µs.
    pub p95_latency_us: u64,
    /// 99th-percentile client-observed round-trip latency in µs.
    pub p99_latency_us: u64,
    /// Worst client-observed round-trip latency in µs.
    pub max_latency_us: u64,
}

impl std::fmt::Display for NetLoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests in {:.2} s ({:.1} req/s); round-trip latency mean {:.0} us, \
             p50 {} us, p95 {} us, p99 {} us, max {} us",
            self.requests,
            self.elapsed_secs,
            self.throughput_rps,
            self.mean_latency_us,
            self.p50_latency_us,
            self.p95_latency_us,
            self.p99_latency_us,
            self.max_latency_us,
        )
    }
}

/// Exact percentile over a sorted latency sample (nearest-rank).
fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Drives a server at `addr` with `cfg.concurrency` connections issuing
/// `cfg.requests` blocking round trips in total (the serving-tower request
/// shape), and folds the client-observed latencies into a report. Panics on
/// any transport or server error — a load run with silent failures would
/// report fiction.
pub fn run_net_load<A: ToSocketAddrs + Sync>(addr: A, cfg: &NetLoadConfig) -> NetLoadReport {
    assert!(cfg.concurrency >= 1, "need at least one connection");
    let latencies = Mutex::new(Vec::with_capacity(cfg.requests));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..cfg.concurrency {
            // Front connections take the remainder so exactly `requests` flow.
            let share = cfg.requests / cfg.concurrency
                + usize::from(client < cfg.requests % cfg.concurrency);
            let addr = &addr;
            let latencies = &latencies;
            scope.spawn(move || {
                // lint: allow(panic) — load-measurement harness: a client
                // that cannot connect invalidates the run, so die loudly.
                let mut conn = NetClient::connect(addr).expect("connecting the load client");
                let mut observed = Vec::with_capacity(share);
                for i in 0..share {
                    let seed = (client * 1_000_003 + i) as u64;
                    let sent = Instant::now();
                    let out = conn
                        .infer(&request_input(seed))
                        // lint: allow(panic) — harness: a failed round trip
                        // poisons the latency sample, so abort the run.
                        .expect("round trip failed mid-load");
                    observed.push(sent.elapsed());
                    assert_eq!(out.shape(), &[1, CLASSES], "response shape mismatch");
                }
                // lint: allow(panic) — harness: poisoning means another
                // client already died and the run is void.
                latencies.lock().unwrap().extend(observed);
            });
        }
    });
    let elapsed = started.elapsed().max(Duration::from_nanos(1));
    let mut latencies_us: Vec<u64> = latencies
        .into_inner()
        // lint: allow(panic) — harness, same poisoning argument as above.
        .unwrap()
        .iter()
        .map(|d| d.as_micros() as u64)
        .collect();
    latencies_us.sort_unstable();
    let requests = latencies_us.len();
    let sum: u64 = latencies_us.iter().sum();
    NetLoadReport {
        requests,
        elapsed_secs: elapsed.as_secs_f64(),
        throughput_rps: requests as f64 / elapsed.as_secs_f64(),
        mean_latency_us: if requests == 0 {
            0.0
        } else {
            sum as f64 / requests as f64
        },
        p50_latency_us: percentile_us(&latencies_us, 0.50),
        p95_latency_us: percentile_us(&latencies_us, 0.95),
        p99_latency_us: percentile_us(&latencies_us, 0.99),
        max_latency_us: latencies_us.last().copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank_on_the_sorted_sample() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&sorted, 0.50), 50);
        assert_eq!(percentile_us(&sorted, 0.95), 95);
        assert_eq!(percentile_us(&sorted, 0.99), 99);
        assert_eq!(percentile_us(&sorted, 1.0), 100);
        assert_eq!(percentile_us(&[], 0.5), 0);
        assert_eq!(percentile_us(&[7], 0.99), 7);
    }
}
