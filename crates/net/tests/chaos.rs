//! Fault-injection end-to-end suite: the serving stack behind the
//! `dsx-chaos` proxy.
//!
//! The contract under test, from the fault-tolerance design: **every
//! injected fault ends, on the client side, in a typed error or a
//! successful retry — never a hang, never a silently lost response** — and
//! the server never drops a request unserved.
//!
//! Knobs (CI sets both):
//! * `DSX_CHAOS_BACKEND` — kernel backend for the served model
//!   (`naive|blocked|tiled|swsum`, default `blocked`);
//! * `DSX_CHAOS_SEED` — fault-plan seed (default 42). A failing seed
//!   replays bit-identically: the plan is a pure function of the seed.

use dsx_chaos::{ChaosProxy, FaultKind, FaultMix, FaultPlan};
use dsx_core::BackendKind;
use dsx_net::{
    ClientConfig, ErrorCode, NetClient, NetError, NetServer, NetServerConfig, RetryPolicy,
};
use dsx_nn::Layer;
use dsx_serve::{build_serving_model, request_input, serving_spec_with, ServeConfig};
use dsx_tensor::{allclose, Tensor};
use std::collections::HashSet;
use std::io::Read;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn backend() -> BackendKind {
    match std::env::var("DSX_CHAOS_BACKEND") {
        Ok(name) => name
            .parse()
            .unwrap_or_else(|e| panic!("DSX_CHAOS_BACKEND: {e}")),
        Err(_) => BackendKind::Blocked,
    }
}

fn chaos_seed() -> u64 {
    match std::env::var("DSX_CHAOS_SEED") {
        Ok(seed) => seed.parse().expect("DSX_CHAOS_SEED must be a u64"),
        Err(_) => 42,
    }
}

/// A small paper-shaped tower on the env-selected backend.
fn chaos_model() -> Arc<dyn Layer> {
    build_serving_model(&serving_spec_with(8, 1), backend())
}

fn quick_config() -> ServeConfig {
    ServeConfig::default()
        .with_workers(2)
        .with_max_batch(4)
        .with_max_wait(Duration::from_millis(2))
}

/// A client tuned for a hostile network: short socket timeouts (so black
/// holes resolve in test time) and a known retry budget.
fn resilient_config(read_timeout: Duration, max_attempts: u32) -> ClientConfig {
    ClientConfig {
        connect_timeout: Some(Duration::from_secs(2)),
        read_timeout: Some(read_timeout),
        write_timeout: Some(Duration::from_secs(2)),
        retry: RetryPolicy {
            max_attempts,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            jitter: 0.5,
            seed: chaos_seed(),
        },
    }
}

/// A model that holds its worker for `delay` — for pinning the batcher.
struct SlowIdentity {
    delay: Duration,
}

impl Layer for SlowIdentity {
    fn name(&self) -> String {
        "slow-identity".to_string()
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        std::thread::sleep(self.delay);
        input.clone()
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        grad_output.clone()
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }
}

/// The soak: a realistic mixed fault plan between client and server. Every
/// request must end in parity-checked output or a typed error; the server
/// must never drop a request; at least 5 distinct fault kinds must have
/// actually fired.
#[test]
fn every_fault_ends_in_a_typed_error_or_a_successful_retry() {
    let model = chaos_model();
    let server = NetServer::start("127.0.0.1:0", Arc::clone(&model), quick_config()).unwrap();
    let proxy = ChaosProxy::start(server.local_addr(), FaultPlan::new(chaos_seed())).unwrap();
    let mut client = NetClient::connect_with(
        proxy.local_addr(),
        resilient_config(Duration::from_millis(300), 4),
    )
    .unwrap();
    const REQUESTS: u64 = 80;
    let (mut served, mut typed_errors) = (0usize, 0usize);
    for i in 0..REQUESTS {
        let input = request_input(i);
        match client.infer_retry(&input, 0) {
            Ok(output) => {
                let direct = model.infer(&input);
                assert!(
                    allclose(&output, &direct, 1e-5),
                    "request {i}: response survived chaos but lost parity"
                );
                served += 1;
            }
            // Any NetError is a *typed* outcome: the contract forbids
            // hangs and silent losses, not failures.
            Err(_) => typed_errors += 1,
        }
    }
    drop(client);
    let events = proxy.shutdown();
    let kinds: HashSet<FaultKind> = events.iter().map(|e| e.kind).collect();
    let snap = server.shutdown();
    println!(
        "chaos summary: {served}/{REQUESTS} served, {typed_errors} typed errors, \
         {} faults injected across {} kinds, {} server-side sheds, {} drops",
        events.len(),
        kinds.len(),
        snap.shed_requests,
        snap.dropped_requests,
    );
    assert_eq!(
        served + typed_errors,
        REQUESTS as usize,
        "every request must terminate"
    );
    assert!(
        served > REQUESTS as usize / 2,
        "the retry budget should ride out most faults (got {served}/{REQUESTS})"
    );
    assert!(
        kinds.len() >= 5,
        "the soak must exercise at least 5 fault kinds, got {kinds:?}"
    );
    assert_eq!(
        snap.dropped_requests, 0,
        "chaos must never make the server drop a request unserved: {snap}"
    );
}

/// Deadlines cross the wire: a request whose `deadline_us` budget expires
/// in the queue is answered with a typed `DeadlineExceeded` error frame,
/// and the shed shows up in the serve-tier counters.
#[test]
fn expired_deadlines_come_back_as_typed_error_frames() {
    let server = NetServer::start(
        "127.0.0.1:0",
        Arc::new(SlowIdentity {
            delay: Duration::from_millis(60),
        }),
        ServeConfig::default()
            .with_workers(1)
            .with_max_batch(1)
            .with_max_wait(Duration::ZERO),
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let input = Tensor::randn(&[1, 2, 2, 2], 7);
    // The first request pins the single worker for 60 ms; the second has a
    // 1 ms budget and is long dead by the time the worker dequeues it.
    let pinned = client.send_request(&input).unwrap();
    let doomed = client.send_request_deadline(&input, 1_000).unwrap();
    let mut outcomes = std::collections::HashMap::new();
    for _ in 0..2 {
        let reply = client.read_reply().unwrap();
        outcomes.insert(reply.id, reply.result);
    }
    assert!(
        outcomes[&pinned].is_ok(),
        "the pinned request had no deadline and must be served"
    );
    match &outcomes[&doomed] {
        Err((ErrorCode::DeadlineExceeded, message)) => {
            assert!(
                message.contains("deadline"),
                "the error frame should explain itself: {message}"
            );
        }
        other => panic!("expected a DeadlineExceeded error frame, got {other:?}"),
    }
    drop(client);
    let snap = server.shutdown();
    assert_eq!(snap.shed_requests, 1, "{snap}");
    assert_eq!(snap.dropped_requests, 0, "{snap}");
}

/// The connection-limit admission gate: past `max_conns`, a fresh
/// connection gets one typed `ServerBusy` frame and a close — and the slot
/// reopens once an admitted connection leaves.
#[test]
fn connections_past_the_limit_get_server_busy_and_the_slot_recovers() {
    let model = chaos_model();
    let server = NetServer::start_net(
        "127.0.0.1:0",
        Arc::clone(&model),
        NetServerConfig {
            max_conns: Some(1),
            ..NetServerConfig::from(quick_config())
        },
        None,
    )
    .unwrap();
    let mut admitted = NetClient::connect(server.local_addr()).unwrap();
    admitted.infer(&request_input(1)).unwrap();
    // Second connection: over the limit. The server may take one acceptor
    // poll to observe the first connection, so allow a brief settle.
    let mut rejected = NetClient::connect(server.local_addr()).unwrap();
    match rejected.read_reply() {
        Ok(reply) => {
            assert_eq!(reply.id, 0, "admission rejections are unattributed");
            match reply.result {
                Err((ErrorCode::ServerBusy, _)) => {}
                other => panic!("expected ServerBusy, got {other:?}"),
            }
        }
        Err(e) => panic!("expected a ServerBusy frame before the close, got {e}"),
    }
    drop(rejected);
    // Free the slot and give the acceptor's sweep a few polls to notice.
    drop(admitted);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut retry = NetClient::connect(server.local_addr()).unwrap();
        match retry.infer(&request_input(2)) {
            Ok(_) => break,
            Err(NetError::Server {
                code: ErrorCode::ServerBusy,
                ..
            })
            | Err(NetError::Wire(_))
            | Err(NetError::Io(_))
            | Err(NetError::UnexpectedFrame(_)) => {
                assert!(
                    Instant::now() < deadline,
                    "the connection slot never recovered after the admitted client left"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(other) => panic!("unexpected failure while waiting for the slot: {other}"),
        }
    }
    server.shutdown();
}

/// Idle reaping: a connected-but-silent client is disconnected after the
/// quiet period, while a client that keeps talking is left alone.
#[test]
fn idle_connections_are_reaped_but_active_ones_survive() {
    let model = chaos_model();
    let server = NetServer::start_net(
        "127.0.0.1:0",
        Arc::clone(&model),
        NetServerConfig {
            idle_timeout: Some(Duration::from_millis(100)),
            ..NetServerConfig::from(quick_config())
        },
        None,
    )
    .unwrap();
    // The active client: a round trip every ~40 ms keeps its activity
    // clock fresh across several idle windows.
    let mut active = NetClient::connect(server.local_addr()).unwrap();
    // The silent client: connects and never sends a byte.
    let mut silent = TcpStream::connect(server.local_addr()).unwrap();
    silent
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    for i in 0..8u64 {
        active.infer(&request_input(i)).unwrap();
        std::thread::sleep(Duration::from_millis(40));
    }
    // By now (~320 ms of silence vs a 100 ms quiet period) the silent
    // connection must have been shut down: EOF, not a hang.
    let mut buf = [0u8; 1];
    match silent.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("the reaped connection produced {n} bytes from nowhere"),
        Err(e) => panic!("expected EOF from the reaped connection, got {e}"),
    }
    // The active client is still healthy.
    active.infer(&request_input(99)).unwrap();
    drop(active);
    server.shutdown();
}

/// The per-connection in-flight cap: a pipeliner past the cap gets typed
/// `ServerBusy` frames carrying *its* request ids, on a connection that
/// stays open, while admitted work completes normally.
#[test]
fn pipelining_past_the_inflight_cap_is_rejected_per_request() {
    let server = NetServer::start_net(
        "127.0.0.1:0",
        Arc::new(SlowIdentity {
            delay: Duration::from_millis(100),
        }),
        NetServerConfig {
            max_inflight: Some(1),
            ..NetServerConfig::from(
                ServeConfig::default()
                    .with_workers(1)
                    .with_max_batch(1)
                    .with_max_wait(Duration::ZERO),
            )
        },
        None,
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let input = Tensor::randn(&[1, 2, 2, 2], 11);
    let admitted = client.send_request(&input).unwrap();
    // While the worker sleeps on the admitted request, these two exceed
    // the cap of 1 unanswered request.
    let over1 = client.send_request(&input).unwrap();
    let over2 = client.send_request(&input).unwrap();
    let mut outcomes = std::collections::HashMap::new();
    for _ in 0..3 {
        let reply = client.read_reply().unwrap();
        outcomes.insert(reply.id, reply.result);
    }
    assert!(
        outcomes[&admitted].is_ok(),
        "the admitted request must serve"
    );
    for id in [over1, over2] {
        match &outcomes[&id] {
            Err((ErrorCode::ServerBusy, _)) => {}
            other => panic!("request {id} over the cap should be ServerBusy, got {other:?}"),
        }
    }
    // The connection survived the rejections: the next request serves.
    let output = client.infer(&input).unwrap();
    assert!(allclose(&output, &input, 1e-6));
    drop(client);
    server.shutdown();
}

/// A total black hole (every request frame swallowed, connection held
/// open) must end in a typed `Timeout` after the bounded retry budget —
/// the one fault where "no hang" is entirely the client's own doing.
#[test]
fn a_black_hole_ends_in_a_typed_timeout_not_a_hang() {
    let model = chaos_model();
    let server = NetServer::start("127.0.0.1:0", Arc::clone(&model), quick_config()).unwrap();
    let proxy = ChaosProxy::start(
        server.local_addr(),
        FaultPlan::with_mix(chaos_seed(), FaultMix::only(FaultKind::BlackHole)),
    )
    .unwrap();
    let mut client = NetClient::connect_with(
        proxy.local_addr(),
        resilient_config(Duration::from_millis(200), 3),
    )
    .unwrap();
    let started = Instant::now();
    match client.infer_retry(&request_input(0), 0) {
        Err(NetError::Timeout) => {}
        Err(other) => panic!("expected the typed Timeout, got {other}"),
        Ok(_) => panic!("a black-holed request cannot succeed"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "3 attempts at a 200 ms read timeout must resolve in seconds, took {:?}",
        started.elapsed()
    );
    drop(client);
    proxy.shutdown();
    server.shutdown();
}

/// The observability contract: shed, retry, and reject counters all
/// surface in the wire `Stats` frame, so `--stats-every` and remote
/// operators see the fault-tolerance machinery working.
#[test]
fn resilience_counters_surface_in_the_wire_stats_snapshot() {
    // 1. Force client retries and timeouts through a black-hole proxy.
    let model = chaos_model();
    let server = NetServer::start("127.0.0.1:0", Arc::clone(&model), quick_config()).unwrap();
    let proxy = ChaosProxy::start(
        server.local_addr(),
        FaultPlan::with_mix(chaos_seed(), FaultMix::only(FaultKind::BlackHole)),
    )
    .unwrap();
    let mut doomed = NetClient::connect_with(
        proxy.local_addr(),
        resilient_config(Duration::from_millis(100), 2),
    )
    .unwrap();
    let _ = doomed.infer_retry(&request_input(0), 0);
    drop(doomed);
    proxy.shutdown();
    // 2. Force a per-request in-flight rejection on a capped server.
    let capped = NetServer::start_net(
        "127.0.0.1:0",
        Arc::new(SlowIdentity {
            delay: Duration::from_millis(80),
        }),
        NetServerConfig {
            max_inflight: Some(1),
            ..NetServerConfig::from(
                ServeConfig::default()
                    .with_workers(1)
                    .with_max_batch(1)
                    .with_max_wait(Duration::ZERO),
            )
        },
        None,
    )
    .unwrap();
    let mut pipeliner = NetClient::connect(capped.local_addr()).unwrap();
    let input = Tensor::randn(&[1, 2, 2, 2], 3);
    pipeliner.send_request(&input).unwrap();
    pipeliner.send_request(&input).unwrap(); // over the cap: rejected
    for _ in 0..2 {
        pipeliner.read_reply().unwrap();
    }
    // 3. The wire Stats snapshot (all counters are process-global, so any
    //    live server exports them) must now show all three families.
    let mut observer = NetClient::connect(capped.local_addr()).unwrap();
    let snapshot = observer.stats().unwrap();
    assert!(
        snapshot.get("serve.shed_requests").is_some(),
        "shed counter missing from the wire snapshot"
    );
    assert!(
        snapshot.get("net.client.retries").unwrap_or(0) >= 1,
        "retry counter missing from the wire snapshot"
    );
    assert!(
        snapshot.get("net.client.timeouts").unwrap_or(0) >= 1,
        "timeout counter missing from the wire snapshot"
    );
    assert!(
        snapshot.get("net.req.rejected_inflight").unwrap_or(0) >= 1,
        "in-flight reject counter missing from the wire snapshot"
    );
    assert!(
        snapshot.get("net.conn.accepted").unwrap_or(0) >= 1,
        "accept counter missing from the wire snapshot"
    );
    drop(pipeliner);
    drop(observer);
    capped.shutdown();
    server.shutdown();
}

/// Mid-request severs (the harshest connection fault) against a pipelined
/// client: `infer_retry` reconnects and the final outcome is still typed.
#[test]
fn severed_connections_reconnect_and_finish_typed() {
    let model = chaos_model();
    let server = NetServer::start("127.0.0.1:0", Arc::clone(&model), quick_config()).unwrap();
    let proxy = ChaosProxy::start(
        server.local_addr(),
        FaultPlan::with_mix(chaos_seed(), FaultMix::only(FaultKind::Sever)),
    )
    .unwrap();
    let mut client = NetClient::connect_with(
        proxy.local_addr(),
        resilient_config(Duration::from_millis(300), 3),
    )
    .unwrap();
    // Every attempt's connection is severed on its first frame: the retry
    // budget burns down to a typed connection-level error, quickly.
    let started = Instant::now();
    match client.infer_retry(&request_input(0), 0) {
        Ok(_) => panic!("an always-severed request cannot succeed"),
        Err(NetError::Io(_) | NetError::Wire(_) | NetError::Timeout) => {}
        Err(other) => panic!("expected a connection-level error, got {other}"),
    }
    assert!(started.elapsed() < Duration::from_secs(5));
    drop(client);
    let events = proxy.shutdown();
    assert!(
        events.iter().any(|e| e.kind == FaultKind::Sever),
        "the sever plan never fired: {events:?}"
    );
    server.shutdown();
}
