//! End-to-end tests of the `dsx-serve` binary's flag handling: conflicting
//! and invalid network flags must exit 2 *before* any layer construction
//! (the PR-3 CLI contract), and a listen/connect round trip must work over
//! a real socket.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Output, Stdio};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dsx-serve"))
        .args(args)
        .output()
        .expect("running the dsx-serve binary failed")
}

/// Asserts the canonical flag-error contract: exit code 2, a stderr that
/// names the problem, and no model construction (no "serving model:" line).
fn assert_flag_error(args: &[&str], stderr_needle: &str) {
    let out = run(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} must exit 2, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(stderr_needle),
        "{args:?}: stderr must mention '{stderr_needle}', got: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("serving model:"),
        "{args:?}: no model may be built after a flag error:\n{stdout}"
    );
}

#[test]
fn listen_plus_connect_is_rejected_before_construction() {
    assert_flag_error(
        &["--listen", "127.0.0.1:0", "--connect", "127.0.0.1:1"],
        "mutually exclusive",
    );
}

#[test]
fn invalid_addresses_are_rejected_before_construction() {
    assert_flag_error(&["--listen", "not-an-address"], "socket address");
    assert_flag_error(&["--connect", "localhost:7878"], "socket address");
    assert_flag_error(&["--listen", "127.0.0.1:notaport"], "socket address");
    assert_flag_error(&["--listen"], "needs a value");
}

#[test]
fn serve_secs_without_listen_is_rejected() {
    assert_flag_error(&["--serve-secs", "5"], "--serve-secs only applies");
}

#[test]
fn adaptive_with_connect_is_rejected() {
    assert_flag_error(&["--connect", "127.0.0.1:1", "--adaptive"], "--adaptive");
}

#[test]
fn unknown_flags_still_exit_two() {
    assert_flag_error(&["--frobnicate"], "unknown flag");
}

/// Spawns `dsx-serve --listen 127.0.0.1:0` and parses the bound address
/// off its stdout.
fn spawn_listener(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dsx-serve"))
        .args(["--listen", "127.0.0.1:0", "--serve-secs", "30"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning the listener failed");
    let stdout = child.stdout.take().expect("captured stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("listener exited before announcing its address")
            .expect("reading listener stdout");
        if let Some(addr) = line.strip_prefix("listening on ") {
            break addr.to_string();
        }
    };
    // Keep draining stdout in the background so the child never blocks on
    // a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

#[test]
fn listen_and_connect_round_trip_over_a_real_socket() {
    let (mut server, addr) = spawn_listener(&["--adaptive"]);
    let out = run(&[
        "--connect",
        &addr,
        "--requests",
        "12",
        "--concurrency",
        "3",
        "--skip-serial",
    ]);
    server.kill().expect("stopping the listener");
    server.wait().expect("reaping the listener");
    assert!(
        out.status.success(),
        "loadgen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("net batched (3 connections):"), "{stdout}");
    assert!(stdout.contains("12 requests"), "{stdout}");
    assert!(
        stdout.contains("p99"),
        "percentiles in the summary: {stdout}"
    );
}
