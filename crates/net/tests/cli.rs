//! End-to-end tests of the `dsx-serve` binary's flag handling: conflicting
//! and invalid network flags must exit 2 *before* any layer construction
//! (the PR-3 CLI contract), a listen/connect round trip must work over a
//! real socket, and `--model` checkpoints that are missing, corrupt or
//! version-mismatched must exit 2 with a one-line reason.

use dsx_models::Checkpoint;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dsx-serve"))
        .args(args)
        .output()
        .expect("running the dsx-serve binary failed")
}

/// Asserts the canonical flag-error contract: exit code 2, a stderr that
/// names the problem, and no model construction (no "serving model:" line).
fn assert_flag_error(args: &[&str], stderr_needle: &str) {
    let out = run(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} must exit 2, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(stderr_needle),
        "{args:?}: stderr must mention '{stderr_needle}', got: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("serving model:"),
        "{args:?}: no model may be built after a flag error:\n{stdout}"
    );
}

#[test]
fn listen_plus_connect_is_rejected_before_construction() {
    assert_flag_error(
        &["--listen", "127.0.0.1:0", "--connect", "127.0.0.1:1"],
        "mutually exclusive",
    );
}

#[test]
fn invalid_addresses_are_rejected_before_construction() {
    assert_flag_error(&["--listen", "not-an-address"], "socket address");
    assert_flag_error(&["--connect", "localhost:7878"], "socket address");
    assert_flag_error(&["--listen", "127.0.0.1:notaport"], "socket address");
    assert_flag_error(&["--listen"], "needs a value");
}

#[test]
fn serve_secs_without_listen_is_rejected() {
    assert_flag_error(&["--serve-secs", "5"], "--serve-secs only applies");
}

#[test]
fn adaptive_with_connect_is_rejected() {
    assert_flag_error(&["--connect", "127.0.0.1:1", "--adaptive"], "--adaptive");
}

#[test]
fn unknown_flags_still_exit_two() {
    assert_flag_error(&["--frobnicate"], "unknown flag");
}

/// A scratch path under the target-provided temp dir, removed on drop.
struct ScratchFile(PathBuf);

impl ScratchFile {
    fn new(tag: &str) -> ScratchFile {
        ScratchFile(
            std::env::temp_dir().join(format!("dsx-serve-cli-{}-{tag}.ckpt", std::process::id())),
        )
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Captures the default serving model into checkpoint bytes (the shape the
/// binary's loadgen mode demands).
fn serving_checkpoint_bytes() -> Vec<u8> {
    let spec = dsx_serve::serving_spec();
    let model = dsx_serve::build_serving_model(&spec, dsx_core::BackendKind::Naive);
    Checkpoint::capture(&spec, &*model).encode()
}

#[test]
fn missing_model_file_exits_two_before_construction() {
    assert_flag_error(
        &["--model", "/nonexistent/never/model.ckpt", "--skip-serial"],
        "cannot load --model",
    );
}

#[test]
fn corrupt_model_bytes_exit_two_before_construction() {
    let scratch = ScratchFile::new("corrupt");
    std::fs::write(&scratch.0, b"these are not checkpoint bytes").expect("writing scratch file");
    assert_flag_error(
        &["--model", scratch.0.to_str().unwrap(), "--skip-serial"],
        "cannot load --model",
    );
}

#[test]
fn version_mismatched_model_exits_two_before_construction() {
    let mut bytes = serving_checkpoint_bytes();
    // Forge a future format version (offset 4..6, after the 4-byte magic)
    // and re-seal the trailing whole-file CRC so only the version differs.
    bytes[4] = 99;
    bytes[5] = 0;
    let body_len = bytes.len() - 4;
    let crc = dsx_tensor::crc32(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
    let scratch = ScratchFile::new("version");
    std::fs::write(&scratch.0, &bytes).expect("writing scratch file");
    assert_flag_error(
        &["--model", scratch.0.to_str().unwrap(), "--skip-serial"],
        "version",
    );
}

#[test]
fn loaded_model_serves_with_a_matching_digest() {
    let spec = dsx_serve::serving_spec();
    let model = dsx_serve::build_serving_model(&spec, dsx_core::BackendKind::Blocked);
    let expected = format!(
        "model digest: {:08x}",
        dsx_models::model_digest(&*model, &spec)
    );
    let ckpt = Checkpoint::capture(&spec, &*model);
    let scratch = ScratchFile::new("digest");
    ckpt.save(&scratch.0).expect("saving the checkpoint");

    let out = run(&[
        "--model",
        scratch.0.to_str().unwrap(),
        "--requests",
        "8",
        "--concurrency",
        "2",
        "--skip-serial",
    ]);
    assert!(
        out.status.success(),
        "serving a loaded model failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(&expected),
        "the binary must serve bit-identical weights (wanted '{expected}'):\n{stdout}"
    );
}

#[test]
fn reload_over_the_wire_hot_swaps_without_closing_the_connection() {
    let ckpt = Checkpoint::decode(&serving_checkpoint_bytes()).expect("decoding own bytes");
    let scratch = ScratchFile::new("reload");
    ckpt.save(&scratch.0).expect("saving the checkpoint");

    let (mut server, addr) = spawn_listener(&["--model", scratch.0.to_str().unwrap()]);
    let mut client = dsx_net::NetClient::connect(&addr).expect("connecting");
    let probe = dsx_tensor::Tensor::randn(&[1, 3, 8, 8], 42);
    let before = client.infer(&probe).expect("inference before reload");
    assert_eq!(client.reload().expect("first reload"), 1);
    assert_eq!(client.reload().expect("second reload"), 2);
    // Same file on disk, so the swapped-in weights answer identically —
    // and the connection survived both swaps.
    let after = client.infer(&probe).expect("inference after reload");
    assert_eq!(before.as_slice(), after.as_slice());
    drop(client);
    server.kill().expect("stopping the listener");
    server.wait().expect("reaping the listener");
}

#[test]
fn reload_without_a_model_path_is_a_typed_server_error() {
    let (mut server, addr) = spawn_listener(&[]);
    let mut client = dsx_net::NetClient::connect(&addr).expect("connecting");
    let err = client.reload().expect_err("reload must be refused");
    match err {
        dsx_net::NetError::Server { code, message } => {
            assert_eq!(code, dsx_net::ErrorCode::BadRequest);
            assert!(message.contains("not enabled"), "{message}");
        }
        other => panic!("expected a typed server error, got: {other}"),
    }
    // The refusal is per-request, not fatal: the connection still serves.
    let logits = client
        .infer(&dsx_tensor::Tensor::randn(&[1, 3, 8, 8], 42))
        .expect("inference after refused reload");
    assert_eq!(logits.shape()[0], 1);
    drop(client);
    server.kill().expect("stopping the listener");
    server.wait().expect("reaping the listener");
}

/// Spawns `dsx-serve --listen 127.0.0.1:0` and parses the bound address
/// off its stdout.
fn spawn_listener(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dsx-serve"))
        .args(["--listen", "127.0.0.1:0", "--serve-secs", "30"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning the listener failed");
    let stdout = child.stdout.take().expect("captured stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("listener exited before announcing its address")
            .expect("reading listener stdout");
        if let Some(addr) = line.strip_prefix("listening on ") {
            break addr.to_string();
        }
    };
    // Keep draining stdout in the background so the child never blocks on
    // a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

#[test]
fn listen_and_connect_round_trip_over_a_real_socket() {
    let (mut server, addr) = spawn_listener(&["--adaptive"]);
    let out = run(&[
        "--connect",
        &addr,
        "--requests",
        "12",
        "--concurrency",
        "3",
        "--skip-serial",
    ]);
    server.kill().expect("stopping the listener");
    server.wait().expect("reaping the listener");
    assert!(
        out.status.success(),
        "loadgen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("net batched (3 connections):"), "{stdout}");
    assert!(stdout.contains("12 requests"), "{stdout}");
    assert!(
        stdout.contains("p99"),
        "percentiles in the summary: {stdout}"
    );
}
