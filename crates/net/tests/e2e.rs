//! End-to-end socket tests on `127.0.0.1:0`: parity with direct inference,
//! concurrent clients with interleaved request ids, protocol-error
//! handling, and survival of misbehaving peers.

use dsx_net::{protocol, ErrorCode, Frame, NetClient, NetServer, WireError};
use dsx_nn::{GlobalAvgPool, Layer, Linear, ReLU, Sequential};
use dsx_serve::ServeConfig;
use dsx_tensor::{allclose, Tensor};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A tiny model: [N, 2, 4, 4] -> [N, 3] logits.
fn tiny_model() -> Arc<dyn Layer> {
    Arc::new(
        Sequential::new("tiny-net")
            .push(ReLU::new())
            .push(GlobalAvgPool::new())
            .push(Linear::new(2, 3, 7)),
    )
}

fn request(seed: u64) -> Tensor {
    Tensor::randn(&[1, 2, 4, 4], seed)
}

fn quick_config() -> ServeConfig {
    ServeConfig::default()
        .with_workers(2)
        .with_max_batch(4)
        .with_max_wait(Duration::from_millis(2))
}

#[test]
fn single_client_round_trip_matches_direct_inference() {
    let model = tiny_model();
    let server = NetServer::start("127.0.0.1:0", Arc::clone(&model), quick_config()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    for seed in 0..5 {
        let input = request(seed);
        let served = client.infer(&input).unwrap();
        let direct = model.infer(&input);
        assert_eq!(served.shape(), &[1, 3]);
        assert!(
            allclose(&served, &direct, 1e-6),
            "seed {seed}: network parity with direct infer"
        );
    }
    drop(client);
    let snap = server.shutdown();
    assert_eq!(snap.requests, 5);
}

#[test]
fn pipelined_requests_reassemble_by_id_whatever_the_order() {
    let model = tiny_model();
    let server = NetServer::start("127.0.0.1:0", Arc::clone(&model), quick_config()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    // Deliberately non-contiguous, shuffled id space on one connection.
    let ids = [907u64, 3, 500, 42, 77, 11];
    let inputs: Vec<Tensor> = (0..ids.len()).map(|i| request(1000 + i as u64)).collect();
    for (id, input) in ids.iter().zip(&inputs) {
        client.send_request_with_id(*id, input).unwrap();
    }
    let mut got = std::collections::HashMap::new();
    for _ in 0..ids.len() {
        let reply = client.read_reply().unwrap();
        let output = reply.result.expect("no error frames expected");
        assert!(got.insert(reply.id, output).is_none(), "duplicate id");
    }
    for (id, input) in ids.iter().zip(&inputs) {
        let direct = model.infer(input);
        assert!(
            allclose(&got[id], &direct, 1e-6),
            "id {id} reassembled to the wrong output"
        );
    }
    drop(client);
    server.shutdown();
}

#[test]
fn concurrent_clients_each_get_their_own_answers() {
    let model = tiny_model();
    let server = NetServer::start("127.0.0.1:0", Arc::clone(&model), quick_config()).unwrap();
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let model = Arc::clone(&model);
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                for i in 0..8u64 {
                    let input = request(t * 1_000 + i);
                    let served = client.infer(&input).unwrap();
                    let direct = model.infer(&input);
                    assert!(allclose(&served, &direct, 1e-6), "client {t} request {i}");
                }
            });
        }
    });
    let snap = server.shutdown();
    assert_eq!(snap.requests, 32);
    assert!(
        snap.max_batch_occupancy >= 1,
        "stats flowed through the network path: {snap}"
    );
}

#[test]
fn malformed_frame_gets_an_error_frame_and_the_connection_survives() {
    let model = tiny_model();
    let server = NetServer::start("127.0.0.1:0", Arc::clone(&model), quick_config()).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // A frame with an honest length but corrupt magic: recoverable.
    let mut bytes = protocol::encode_frame(&Frame::Request {
        id: 5,
        deadline_us: 0,
        tensor: request(0),
    });
    bytes[4] ^= 0xFF;
    stream.write_all(&bytes).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    match protocol::read_frame(&mut reader).unwrap() {
        Frame::Error { id, code, .. } => {
            assert_eq!(id, 0, "an unparseable frame has no attributable id");
            assert_eq!(code, ErrorCode::Malformed);
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    // A garbled payload under a valid header keeps its id: pad a valid
    // request frame with trailing junk (and an honest length prefix).
    let mut padded = protocol::encode_frame(&Frame::Request {
        id: 55,
        deadline_us: 0,
        tensor: request(1),
    });
    let new_len = u32::from_le_bytes(padded[..4].try_into().unwrap()) + 2;
    padded[..4].copy_from_slice(&new_len.to_le_bytes());
    padded.extend_from_slice(&[0, 0]);
    stream.write_all(&padded).unwrap();
    match protocol::read_frame(&mut reader).unwrap() {
        Frame::Error { id, code, .. } => {
            assert_eq!(id, 55, "payload errors stay attributed to their request");
            assert_eq!(code, ErrorCode::Malformed);
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    // The same connection still serves valid requests afterwards.
    let input = request(9);
    stream
        .write_all(&protocol::encode_frame(&Frame::Request {
            id: 6,
            deadline_us: 0,
            tensor: input.clone(),
        }))
        .unwrap();
    match protocol::read_frame(&mut reader).unwrap() {
        Frame::Response { id, tensor } => {
            assert_eq!(id, 6);
            assert!(allclose(&tensor, &model.infer(&input), 1e-6));
        }
        other => panic!("expected a response, got {other:?}"),
    }
    drop(stream);
    server.shutdown();
}

#[test]
fn truncated_frame_then_disconnect_leaves_the_server_healthy() {
    let model = tiny_model();
    let server = NetServer::start("127.0.0.1:0", Arc::clone(&model), quick_config()).unwrap();
    {
        // Claim 100 body bytes, send 10, hang up: EOF mid-frame on the
        // server's reader, which must close only that connection.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&[0xABu8; 10]).unwrap();
    }
    {
        // An oversize length prefix: the server answers with a typed error
        // frame and then closes the connection.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(&(dsx_net::MAX_FRAME_LEN as u32 + 1).to_le_bytes())
            .unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        match protocol::read_frame(&mut reader).unwrap() {
            Frame::Error { code, .. } => assert_eq!(code, ErrorCode::FrameTooLarge),
            other => panic!("expected an error frame, got {other:?}"),
        }
        // The server closed its end: the stream ends (cleanly or with a
        // reset, depending on timing), never with another frame.
        let mut rest = Vec::new();
        let _ = reader.read_to_end(&mut rest);
        assert!(rest.is_empty(), "no frames after close, got {rest:?}");
    }
    // The server itself is unharmed: fresh connections serve as before.
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    assert_eq!(client.infer(&request(1)).unwrap().shape(), &[1, 3]);
    drop(client);
    server.shutdown();
}

#[test]
fn client_disconnecting_mid_request_cancels_quietly() {
    let model = tiny_model();
    let server = NetServer::start(
        "127.0.0.1:0",
        Arc::clone(&model),
        // A long max_wait guarantees the request is still in flight when
        // the client vanishes.
        ServeConfig::default()
            .with_workers(1)
            .with_max_batch(8)
            .with_max_wait(Duration::from_millis(150)),
    )
    .unwrap();
    {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(&protocol::encode_frame(&Frame::Request {
                id: 1,
                deadline_us: 0,
                tensor: request(2),
            }))
            .unwrap();
        // Hang up without reading the response.
    }
    // The batch completes after the disconnect; delivery fails silently and
    // the worker pool keeps serving new connections.
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    assert_eq!(client.infer(&request(3)).unwrap().shape(), &[1, 3]);
    drop(client);
    let snap = server.shutdown();
    assert_eq!(
        snap.requests, 2,
        "the abandoned request was still served: {snap}"
    );
}

#[test]
fn declared_request_dims_surface_as_bad_request_error_frames() {
    let server = NetServer::start(
        "127.0.0.1:0",
        tiny_model(),
        quick_config().with_request_dims(&[2, 4, 4]),
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let err = client.infer(&Tensor::zeros(&[1, 9, 9, 9])).unwrap_err();
    match err {
        dsx_net::NetError::Server { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("[2, 4, 4]"), "{message}");
        }
        other => panic!("expected a server error, got {other}"),
    }
    // Same connection, conforming request: served.
    assert_eq!(client.infer(&request(4)).unwrap().shape(), &[1, 3]);
    drop(client);
    server.shutdown();
}

#[test]
fn response_frames_from_clients_are_rejected_but_not_fatal() {
    let model = tiny_model();
    let server = NetServer::start("127.0.0.1:0", Arc::clone(&model), quick_config()).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .write_all(&protocol::encode_frame(&Frame::Response {
            id: 77,
            tensor: request(0),
        }))
        .unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    match protocol::read_frame(&mut reader).unwrap() {
        Frame::Error { id, code, .. } => {
            assert_eq!(id, 77, "the bogus frame's id is echoed");
            assert_eq!(code, ErrorCode::Malformed);
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    drop(stream);
    drop(reader);
    server.shutdown();
}

#[test]
fn shutdown_reports_what_the_wire_served() {
    let server = NetServer::start("127.0.0.1:0", tiny_model(), quick_config()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    for seed in 0..6 {
        client.infer(&request(seed)).unwrap();
    }
    drop(client);
    let snap = server.shutdown();
    assert_eq!(snap.requests, 6);
    assert!(snap.throughput_rps > 0.0);
    assert!(snap.p50_latency_us <= snap.p99_latency_us);
}

#[test]
fn stats_frame_returns_live_metrics_over_the_wire() {
    let model = tiny_model();
    let server = NetServer::start("127.0.0.1:0", Arc::clone(&model), quick_config()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    for seed in 0..4 {
        client.infer(&request(seed)).unwrap();
    }
    let snapshot = client.stats().unwrap();
    // The serve tier's counters ride along with the process-wide registry.
    assert!(
        snapshot.get("serve.requests").unwrap_or(0) >= 4,
        "serve.requests missing or low in {snapshot}"
    );
    assert!(
        snapshot.get("serve.latency.count").unwrap_or(0) >= 4,
        "latency histogram summary missing in {snapshot}"
    );
    // The wire tier observed at least our own frames (other tests in this
    // process may have added more — counters are process-global).
    assert!(
        snapshot.get("net.frames_read").unwrap_or(0) >= 4,
        "net.frames_read missing in {snapshot}"
    );
    assert!(snapshot.get("net.bytes_read").unwrap_or(0) > 0);
    // Entries arrive sorted so the one-line rendering is stable.
    let names: Vec<&str> = snapshot.entries.iter().map(|e| e.name.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "snapshot entries must arrive sorted");
    // A normal request still works on the same connection afterwards.
    assert_eq!(client.infer(&request(9)).unwrap().shape(), &[1, 3]);
    drop(client);
    server.shutdown();
}

#[test]
fn wire_error_display_is_readable() {
    // Cheap coverage of the error plumbing the tests above rely on.
    let err = WireError::Malformed {
        id: 12,
        why: "bad magic".to_string(),
    };
    assert!(err.to_string().contains("bad magic"));
    assert!(err.is_recoverable());
    assert_eq!(err.frame_id(), 12);
}
